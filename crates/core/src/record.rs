//! Per-circuit records and the feature extraction feeding the ML models.

use afp_asic::AsicReport;
use afp_circuits::{ArithCircuit, ArithKind};
use afp_error::ErrorMetrics;
use afp_fpga::FpgaReport;
use afp_netlist::analyze::NetlistStats;
use afp_netlist::GateKind;

/// The FPGA parameter a model estimates (the paper's three targets).
// Safe total order (`Eq + Ord`, no float keys): the clippy.toml
// `partial_cmp` ban fires inside the derive expansion, not here.
#[allow(clippy::disallowed_methods)]
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FpgaParam {
    /// Critical-path delay in ns.
    Latency,
    /// Total power in mW.
    Power,
    /// Area as #LUTs.
    Area,
}

impl FpgaParam {
    /// All targets in paper order.
    pub const ALL: [FpgaParam; 3] = [FpgaParam::Latency, FpgaParam::Power, FpgaParam::Area];

    /// Extract this parameter from an FPGA report.
    pub fn of(&self, report: &FpgaReport) -> f64 {
        match self {
            FpgaParam::Latency => report.delay_ns,
            FpgaParam::Power => report.power_mw,
            FpgaParam::Area => report.luts as f64,
        }
    }

    /// Human-readable label with unit.
    pub fn label(&self) -> &'static str {
        match self {
            FpgaParam::Latency => "latency [ns]",
            FpgaParam::Power => "power [mW]",
            FpgaParam::Area => "area [#LUTs]",
        }
    }
}

impl std::fmt::Display for FpgaParam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything the flow knows about one circuit in the library.
#[derive(Clone, Debug)]
pub struct CircuitRecord {
    /// Dense index within the library.
    pub id: usize,
    /// Circuit name.
    pub name: String,
    /// Adder or multiplier.
    pub kind: ArithKind,
    /// Operand width.
    pub width: usize,
    /// Device-profile identity the FPGA report was synthesized for (see
    /// [`afp_fpga::target`]). Records from different fabrics carry
    /// different names, so cross-target experiments can never mix up
    /// whose ground truth is whose.
    pub target: String,
    /// Structural statistics of the (simplified) netlist.
    pub stats: NetlistStats,
    /// ASIC synthesis report (cheap; known for every circuit).
    pub asic: AsicReport,
    /// Behavioural error metrics (cheap; known for every circuit).
    pub error: ErrorMetrics,
    /// FPGA report — in the real flow this is only known once the circuit
    /// has been synthesized. The reproduction stores the ground truth here
    /// and lets the flow account which entries it "paid" for.
    pub fpga: FpgaReport,
}

impl CircuitRecord {
    /// The value of `param` from the (ground-truth) FPGA report.
    pub fn fpga_param(&self, param: FpgaParam) -> f64 {
        param.of(&self.fpga)
    }
}

/// Describes the feature vector layout produced by [`extract_features`].
#[derive(Clone, Debug)]
pub struct FeatureLayout {
    names: Vec<&'static str>,
    asic_power: usize,
    asic_latency: usize,
    asic_area: usize,
}

impl FeatureLayout {
    /// The fixed layout used by this reproduction.
    pub fn standard() -> FeatureLayout {
        let mut names: Vec<&'static str> = vec![
            "width",
            "inputs",
            "outputs",
            "gates",
            "depth",
            "mean_fanout",
            "max_fanout",
        ];
        // One count per logic gate kind, fixed order.
        for kind in GateKind::LOGIC {
            names.push(kind_feature_name(kind));
        }
        let asic_area = names.len();
        names.push("asic_area_um2");
        let asic_latency = names.len();
        names.push("asic_delay_ns");
        let asic_power = names.len();
        names.push("asic_power_mw");
        FeatureLayout {
            names,
            asic_power,
            asic_latency,
            asic_area,
        }
    }

    /// Feature names, in column order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Number of feature columns.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the layout is empty (never true for [`standard`]).
    ///
    /// [`standard`]: FeatureLayout::standard
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Column indices of the ASIC parameters, for ML1–ML3.
    pub fn asic_columns(&self) -> afp_ml::zoo::AsicColumns {
        afp_ml::zoo::AsicColumns {
            power: self.asic_power,
            latency: self.asic_latency,
            area: self.asic_area,
        }
    }
}

fn kind_feature_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Buf => "n_buf",
        GateKind::Not => "n_not",
        GateKind::And => "n_and",
        GateKind::Or => "n_or",
        GateKind::Xor => "n_xor",
        GateKind::Nand => "n_nand",
        GateKind::Nor => "n_nor",
        GateKind::Xnor => "n_xnor",
        GateKind::Mux => "n_mux",
        GateKind::Maj => "n_maj",
        GateKind::Input | GateKind::Const => "n_other",
    }
}

/// Extract the feature vector of one record under `layout`.
pub fn extract_features(record: &CircuitRecord, layout: &FeatureLayout) -> Vec<f64> {
    features_from_parts(record.width, &record.stats, &record.asic, layout)
}

/// Build the feature vector directly from its ingredients — operand
/// width, netlist statistics and the ASIC report. [`extract_features`]
/// is this on a full [`CircuitRecord`]; serving's estimate fast path
/// calls it without ever assembling one (no FPGA synthesis, no error
/// analysis).
pub fn features_from_parts(
    width: usize,
    s: &NetlistStats,
    asic: &AsicReport,
    layout: &FeatureLayout,
) -> Vec<f64> {
    let mut f = Vec::with_capacity(layout.len());
    f.push(width as f64);
    f.push(s.inputs as f64);
    f.push(s.outputs as f64);
    f.push(s.gates as f64);
    f.push(s.depth as f64);
    f.push(s.mean_fanout);
    f.push(s.max_fanout as f64);
    for kind in GateKind::LOGIC {
        f.push(*s.kind_counts.get(&kind).unwrap_or(&0) as f64);
    }
    f.push(asic.area_um2);
    f.push(asic.delay_ns);
    f.push(asic.power_mw);
    debug_assert_eq!(f.len(), layout.len());
    f
}

/// Feature vector for the model-estimate fast path: netlist statistics
/// plus a direct ASIC synthesis, *without* touching any runtime counters
/// or the characterization cache. The ASIC report here is bit-identical
/// to what [`characterize`] would produce — same netlist, same config —
/// so estimates from a persisted zoo match estimates computed in the
/// training process exactly.
pub fn estimate_features(
    circuit: &ArithCircuit,
    asic_config: &afp_asic::AsicConfig,
    layout: &FeatureLayout,
) -> Vec<f64> {
    let netlist = circuit.netlist();
    let stats = afp_netlist::analyze::stats(netlist);
    let asic =
        afp_asic::synthesize_asic_with(netlist, asic_config, &mut afp_asic::AsicScratch::new());
    features_from_parts(circuit.width(), &stats, &asic, layout)
}

/// Characterize one circuit: simplify, gather stats, ASIC report, error
/// metrics and the (ground-truth) FPGA report.
pub fn characterize(
    id: usize,
    circuit: &ArithCircuit,
    asic_config: &afp_asic::AsicConfig,
    fpga_config: &afp_fpga::FpgaConfig,
    error_config: &afp_error::ErrorConfig,
) -> CircuitRecord {
    characterize_with(
        id,
        circuit,
        asic_config,
        fpga_config,
        error_config,
        &afp_runtime::Runtime::serial(),
        None,
    )
}

/// [`characterize`] on an explicit runtime, optionally through the
/// characterization cache.
///
/// On a cache hit the three reports are reused and no synthesis or error
/// analysis runs (only the cheap netlist statistics are recomputed); on a
/// miss the reports are computed, counted on the runtime's counters, and
/// inserted into the cache.
pub fn characterize_with(
    id: usize,
    circuit: &ArithCircuit,
    asic_config: &afp_asic::AsicConfig,
    fpga_config: &afp_fpga::FpgaConfig,
    error_config: &afp_error::ErrorConfig,
    rt: &afp_runtime::Runtime,
    cache: Option<&crate::cache::CharacterizationCache>,
) -> CircuitRecord {
    characterize_with_scratch(
        id,
        circuit,
        asic_config,
        fpga_config,
        error_config,
        rt,
        cache,
        &mut CharacterizeScratch::default(),
    )
}

/// Per-worker scratch state for sweeping a library through
/// [`characterize_with_scratch`]: a warm FPGA mapper (cut arenas, simulator
/// buffers) plus ASIC activity-estimation buffers. One of these per worker
/// thread makes the whole characterization loop allocation-free in steady
/// state; results are bit-identical to fresh-state calls.
#[derive(Debug, Default)]
pub struct CharacterizeScratch {
    mapper: afp_fpga::Mapper,
    asic: afp_asic::AsicScratch,
}

/// [`characterize_with`] through caller-owned scratch state (warm mapper
/// and ASIC buffers).
#[allow(clippy::too_many_arguments)]
pub fn characterize_with_scratch(
    id: usize,
    circuit: &ArithCircuit,
    asic_config: &afp_asic::AsicConfig,
    fpga_config: &afp_fpga::FpgaConfig,
    error_config: &afp_error::ErrorConfig,
    rt: &afp_runtime::Runtime,
    cache: Option<&crate::cache::CharacterizationCache>,
    scratch: &mut CharacterizeScratch,
) -> CircuitRecord {
    let CharacterizeScratch { mapper, asic } = scratch;
    characterize_inner(
        id,
        circuit,
        asic_config,
        fpga_config,
        error_config,
        rt,
        cache,
        mapper,
        asic,
    )
}

/// [`characterize_with`] through a caller-owned [`afp_fpga::Mapper`].
///
/// The mapper's work counters are drained into the runtime's shared
/// counters after each synthesis. Results are identical to
/// [`characterize_with`] — warm state only recycles scratch buffers.
#[allow(clippy::too_many_arguments)]
pub fn characterize_with_mapper(
    id: usize,
    circuit: &ArithCircuit,
    asic_config: &afp_asic::AsicConfig,
    fpga_config: &afp_fpga::FpgaConfig,
    error_config: &afp_error::ErrorConfig,
    rt: &afp_runtime::Runtime,
    cache: Option<&crate::cache::CharacterizationCache>,
    mapper: &mut afp_fpga::Mapper,
) -> CircuitRecord {
    characterize_inner(
        id,
        circuit,
        asic_config,
        fpga_config,
        error_config,
        rt,
        cache,
        mapper,
        &mut afp_asic::AsicScratch::new(),
    )
}

#[allow(clippy::too_many_arguments)]
fn characterize_inner(
    id: usize,
    circuit: &ArithCircuit,
    asic_config: &afp_asic::AsicConfig,
    fpga_config: &afp_fpga::FpgaConfig,
    error_config: &afp_error::ErrorConfig,
    rt: &afp_runtime::Runtime,
    cache: Option<&crate::cache::CharacterizationCache>,
    mapper: &mut afp_fpga::Mapper,
    asic_scratch: &mut afp_asic::AsicScratch,
) -> CircuitRecord {
    use crate::cache::{CachedCharacterization, CharacterizationCache};
    use afp_runtime::Counters;

    let netlist = circuit.netlist();
    let key =
        cache.map(|_| CharacterizationCache::key(circuit, asic_config, fpga_config, error_config));
    let cached = key.and_then(|k| cache.and_then(|c| c.get(k, rt.counters())));
    let reports = match cached {
        Some(hit) => hit,
        None => {
            let counters = rt.counters();
            Counters::add(&counters.asic_synths, 1);
            Counters::add(&counters.fpga_synths, 1);
            Counters::add(&counters.error_analyses, 1);
            let computed = CachedCharacterization {
                asic: afp_asic::synthesize_asic_with(netlist, asic_config, asic_scratch),
                error: afp_error::analyze_with(circuit, error_config, rt),
                fpga: mapper.synthesize(netlist, fpga_config),
            };
            let st = mapper.take_stats();
            Counters::add(&counters.cuts_merged, st.cuts_merged);
            Counters::add(&counters.cuts_sig_rejected, st.cuts_sig_rejected);
            Counters::add(&counters.cuts_dominance_pruned, st.cuts_dominance_pruned);
            Counters::add(&counters.mapper_reuses, st.mapper_reuses);
            if let (Some(cache), Some(key)) = (cache, key) {
                cache.insert(key, computed);
            }
            computed
        }
    };
    CircuitRecord {
        id,
        name: circuit.name().to_string(),
        kind: circuit.kind(),
        width: circuit.width(),
        target: fpga_config.target.clone(),
        stats: afp_netlist::analyze::stats(netlist),
        asic: reports.asic,
        error: reports.error,
        fpga: reports.fpga,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::adders;

    fn sample_record() -> CircuitRecord {
        let c = adders::loa(8, 3);
        characterize(
            0,
            &c,
            &afp_asic::AsicConfig::default(),
            &afp_fpga::FpgaConfig::default(),
            &afp_error::ErrorConfig::default(),
        )
    }

    #[test]
    fn layout_is_consistent_with_extraction() {
        let layout = FeatureLayout::standard();
        let rec = sample_record();
        let f = extract_features(&rec, &layout);
        assert_eq!(f.len(), layout.len());
        assert!(!layout.is_empty());
        // Spot-check designated ASIC columns.
        let cols = layout.asic_columns();
        assert_eq!(f[cols.power], rec.asic.power_mw);
        assert_eq!(f[cols.latency], rec.asic.delay_ns);
        assert_eq!(f[cols.area], rec.asic.area_um2);
        assert_eq!(layout.names()[cols.power], "asic_power_mw");
    }

    #[test]
    fn fpga_param_extraction() {
        let rec = sample_record();
        assert_eq!(rec.fpga_param(FpgaParam::Area), rec.fpga.luts as f64);
        assert_eq!(rec.fpga_param(FpgaParam::Latency), rec.fpga.delay_ns);
        assert_eq!(rec.fpga_param(FpgaParam::Power), rec.fpga.power_mw);
    }

    #[test]
    fn characterize_fills_everything() {
        let rec = sample_record();
        assert!(rec.stats.gates > 0);
        assert!(rec.asic.area_um2 > 0.0);
        assert!(rec.error.med > 0.0);
        assert!(rec.fpga.luts > 0);
        assert_eq!(rec.width, 8);
        assert_eq!(rec.target, afp_fpga::DEFAULT_TARGET);
    }

    #[test]
    fn records_carry_the_configured_target_identity() {
        let c = adders::loa(8, 3);
        let profile = afp_fpga::target::named("lut4-ice40").unwrap();
        let rec = characterize(
            0,
            &c,
            &afp_asic::AsicConfig::default(),
            &profile.config(),
            &afp_error::ErrorConfig::default(),
        );
        assert_eq!(rec.target, "lut4-ice40");
    }

    #[test]
    fn param_labels() {
        assert_eq!(FpgaParam::Area.label(), "area [#LUTs]");
        assert_eq!(FpgaParam::ALL.len(), 3);
        assert_eq!(format!("{}", FpgaParam::Power), "power [mW]");
    }
}

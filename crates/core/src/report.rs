//! Assembly of the per-run observability report.
//!
//! [`run_report`] folds a finished [`FlowOutcome`] plus the stage spans of
//! an [`afp_obs::Recorder`] into one [`RunReport`]: the stage table from
//! tracing, and typed sections for configuration, time accounting,
//! runtime counters, cache behaviour, estimate quarantine and pareto
//! coverage. The JSON schema is stable by construction — fields are
//! emitted in fixed builder order — so goldens can compare documents
//! byte-for-byte after [`normalized`] strips the nondeterministic
//! surfaces (wall-clock timings and the scheduling-dependent `steals`
//! and `mapper_reuses` counters).

use afp_obs::{Recorder, RunReport, Section, Value};

use crate::flow::{FlowConfig, FlowOutcome};
use crate::record::FpgaParam;

/// Stable lower-case report key of one FPGA parameter.
fn param_key(param: FpgaParam) -> &'static str {
    match param {
        FpgaParam::Latency => "latency",
        FpgaParam::Power => "power",
        FpgaParam::Area => "area",
    }
}

/// Build the structured run report of one flow outcome.
///
/// Sections, in order: `flow` (what ran), `target` (which device profile
/// the FPGA ground truth was synthesized for), `time` (the paper's
/// exploration-time accounting; undefined ratios are `null`), `runtime`
/// (scheduler/synthesis counters; `steals` and `mapper_reuses` are the
/// schedule-dependent fields), `cache` (hit/miss totals, hit rate and
/// dropped disk writes),
/// `quarantine` (non-finite estimate defenses from the robustness
/// harness) and `coverage` (per-parameter pareto coverage plus the
/// mean).
pub fn run_report(config: &FlowConfig, outcome: &FlowOutcome, recorder: &Recorder) -> RunReport {
    let mut report = RunReport::from_recorder(recorder);
    report.push_section(
        Section::new("flow")
            .field(
                "library_kind",
                Value::Str(config.library.kind.mnemonic().to_string()),
            )
            .field("library_width", Value::UInt(config.library.width as u64))
            .field("library_size", Value::UInt(outcome.records.len() as u64))
            .field("subset_size", Value::UInt(outcome.subset.len() as u64))
            .field("train_size", Value::UInt(outcome.train.len() as u64))
            .field("validate_size", Value::UInt(outcome.validate.len() as u64))
            .field("models", Value::UInt(config.models.len() as u64))
            .field("fronts", Value::UInt(config.fronts as u64))
            .field("top_models", Value::UInt(config.top_models as u64))
            .field("threads", Value::UInt(config.threads as u64))
            .field("seed", Value::UInt(config.seed)),
    );
    let fpga = &config.fpga;
    report.push_section(
        Section::new("target")
            .field("name", Value::Str(fpga.target.clone()))
            .field("lut_inputs", Value::UInt(fpga.arch.lut_inputs as u64))
            .field(
                "luts_per_slice",
                Value::UInt(fpga.arch.luts_per_slice as u64),
            )
            .field("clock_mhz", Value::Num(fpga.clock_mhz))
            .field("pnr_jitter", Value::Num(fpga.pnr_jitter)),
    );
    let time = &outcome.time;
    report.push_section(
        Section::new("time")
            .field("exhaustive_s", Value::Num(time.exhaustive_s))
            .field("flow_s", Value::Num(time.flow_s()))
            .field("subset_s", Value::Num(time.subset_s))
            .field("candidates_s", Value::Num(time.candidates_s))
            .field("ml_s", Value::Num(time.ml_s))
            .field(
                "exhaustive_count",
                Value::UInt(time.exhaustive_count as u64),
            )
            .field("flow_count", Value::UInt(time.flow_count as u64))
            .field("speedup", Value::ratio(time.speedup()))
            .field("synth_reduction", Value::ratio(time.synth_reduction())),
    );
    let rt = &outcome.runtime;
    report.push_section(
        Section::new("runtime")
            .field("tasks_executed", Value::UInt(rt.tasks_executed))
            .field("steals", Value::UInt(rt.steals))
            .field("asic_synths", Value::UInt(rt.asic_synths))
            .field("fpga_synths", Value::UInt(rt.fpga_synths))
            .field("error_analyses", Value::UInt(rt.error_analyses))
            .field("mapper_reuses", Value::UInt(rt.mapper_reuses))
            .field("sim_tape_reuses", Value::UInt(rt.sim_tape_reuses))
            .field(
                "structural_dedup_hits",
                Value::UInt(rt.structural_dedup_hits),
            )
            .field("shards_streamed", Value::UInt(rt.shards_streamed))
            .field(
                "peak_resident_circuits",
                Value::UInt(rt.peak_resident_circuits),
            ),
    );
    let lookups = rt.cache_hits + rt.cache_misses;
    let hit_rate = if lookups > 0 {
        Some(rt.cache_hits as f64 / lookups as f64)
    } else {
        None
    };
    let last_write_error = match &outcome.cache_last_error {
        Some(err) => Value::Str(err.clone()),
        None => Value::Null,
    };
    report.push_section(
        Section::new("cache")
            .field("hits", Value::UInt(rt.cache_hits))
            .field("misses", Value::UInt(rt.cache_misses))
            .field("hit_rate", Value::ratio(hit_rate))
            .field("write_errors", Value::UInt(rt.cache_write_errors))
            .field("last_write_error", last_write_error),
    );
    let dropped: u64 = outcome
        .dropped_models
        .values()
        .map(|v| v.len() as u64)
        .sum();
    report.push_section(
        Section::new("quarantine")
            .field(
                "estimates_quarantined",
                Value::UInt(rt.estimates_quarantined),
            )
            .field("models_dropped", Value::UInt(dropped)),
    );
    let mut coverage = Section::new("coverage");
    for &param in &FpgaParam::ALL {
        let c = outcome.coverage.get(&param).copied();
        coverage = coverage.field(param_key(param), Value::ratio(c));
    }
    report.push_section(coverage.field("mean", Value::Num(outcome.mean_coverage())));
    report
}

/// Strip the run-to-run unstable surfaces from a report — wall-clock
/// stage timings, the two scheduling-dependent counters (`steals`, and
/// `mapper_reuses`, which depends on how work-stealing distributed
/// circuits over per-worker mapper arenas), and the two
/// execution-shape counters (`shards_streamed` and
/// `peak_resident_circuits`, which depend on shard size and on whether
/// the library was streamed or resident, not on what was computed) —
/// leaving a document that is byte-identical across repeated runs,
/// thread counts, shard sizes and library sources. This is what the
/// schema goldens and CI diffs compare.
pub fn normalized(report: &RunReport) -> RunReport {
    let mut out = report.normalized();
    out.set_field("runtime", "steals", Value::UInt(0));
    out.set_field("runtime", "mapper_reuses", Value::UInt(0));
    out.set_field("runtime", "shards_streamed", Value::UInt(0));
    out.set_field("runtime", "peak_resident_circuits", Value::UInt(0));
    // Error strings embed host-specific paths; only presence is stable.
    out.set_field("cache", "last_write_error", Value::Null);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use afp_circuits::{ArithKind, LibrarySpec};
    use afp_ml::MlModelId;

    fn small_outcome() -> (FlowConfig, FlowOutcome, Recorder) {
        let config = FlowConfig {
            library: LibrarySpec::new(ArithKind::Adder, 8, 60),
            models: vec![MlModelId::Ml11, MlModelId::Ml14, MlModelId::Ml18],
            top_models: 2,
            ..FlowConfig::default()
        };
        let recorder = Recorder::enabled();
        let outcome = Flow::new(config.clone()).run_traced(&recorder);
        (config, outcome, recorder)
    }

    #[test]
    fn report_has_every_section_in_order() {
        let (config, outcome, recorder) = small_outcome();
        let report = run_report(&config, &outcome, &recorder);
        let names: Vec<&str> = report.sections.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "flow",
                "target",
                "time",
                "runtime",
                "cache",
                "quarantine",
                "coverage"
            ]
        );
        let json = report.to_json();
        assert!(json.contains("\"quarantine\":{\"estimates_quarantined\":0"));
        assert!(json.contains("\"coverage\":{\"latency\":"));
        assert!(
            json.contains("\"target\":{\"name\":\"lut6-7series\",\"lut_inputs\":6"),
            "{json}"
        );
    }

    #[test]
    fn normalized_report_is_reproducible() {
        let (config, outcome, recorder) = small_outcome();
        let a = normalized(&run_report(&config, &outcome, &recorder));
        let (config2, outcome2, recorder2) = small_outcome();
        let b = normalized(&run_report(&config2, &outcome2, &recorder2));
        assert_eq!(a.to_json(), b.to_json());
        // Timings and steals are genuinely gone.
        assert!(a.to_json().contains("\"steals\":0"));
        assert_eq!(a.total_wall_s(), 0.0);
    }
}

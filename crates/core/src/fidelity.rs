//! Training and fidelity evaluation of the model zoo (Fig. 5 / Table II).

use afp_ml::metrics::{fidelity, mae, pearson, r2};
use afp_ml::{build_model, Matrix, MlModelId, Regressor};
use afp_obs::Recorder;
use afp_runtime::Runtime;

use crate::record::{extract_features, CircuitRecord, FeatureLayout, FpgaParam};

/// Evaluation result of one model for one FPGA parameter.
#[derive(Clone, Debug)]
pub struct FidelityRecord {
    /// Which model.
    pub model: MlModelId,
    /// Which FPGA parameter it estimates.
    pub param: FpgaParam,
    /// Fidelity on the validation set (paper Eq. 1).
    pub fidelity: f64,
    /// R² on the validation set.
    pub r2: f64,
    /// Mean absolute error on the validation set.
    pub mae: f64,
    /// Pearson correlation on the validation set.
    pub pearson: f64,
}

/// The hyperparameter-grid label chosen per trained (model, parameter),
/// as returned by the tuned training entry points.
pub type ChosenLabels = Vec<((MlModelId, FpgaParam), String)>;

/// A zoo of trained models: one regressor per (model id, FPGA parameter).
pub struct TrainedZoo {
    layout: FeatureLayout,
    models: Vec<((MlModelId, FpgaParam), Box<dyn Regressor>)>,
    /// Validation-set evaluations, one per (model, param).
    pub fidelities: Vec<FidelityRecord>,
}

impl TrainedZoo {
    /// Feature layout the zoo was trained with.
    pub fn layout(&self) -> &FeatureLayout {
        &self.layout
    }

    /// Every trained (model, parameter) pair with its regressor, in
    /// training order — the iteration surface the `.afpm` persistence
    /// layer serializes from.
    pub(crate) fn trained_models(
        &self,
    ) -> impl Iterator<Item = (MlModelId, FpgaParam, &dyn Regressor)> {
        self.models
            .iter()
            .map(|((m, p), reg)| (*m, *p, reg.as_ref()))
    }

    /// Rebuild a zoo from decoded parts (the `.afpm` load path).
    pub(crate) fn from_parts(
        layout: FeatureLayout,
        models: Vec<((MlModelId, FpgaParam), Box<dyn Regressor>)>,
        fidelities: Vec<FidelityRecord>,
    ) -> TrainedZoo {
        TrainedZoo {
            layout,
            models,
            fidelities,
        }
    }

    /// Whether the (model, param) pair has a trained regressor.
    pub fn has_model(&self, model: MlModelId, param: FpgaParam) -> bool {
        self.models
            .iter()
            .any(|((m, p), _)| *m == model && *p == param)
    }

    /// Estimate `param` with `model` from an already-extracted feature
    /// row. `None` when the pair was never trained — the non-panicking
    /// sibling of [`TrainedZoo::estimate`] for serving paths that must
    /// not abort on an uncovered request.
    pub fn estimate_row(
        &self,
        model: MlModelId,
        param: FpgaParam,
        features: &[f64],
    ) -> Option<f64> {
        self.models
            .iter()
            .find(|((m, p), _)| *m == model && *p == param)
            .map(|(_, reg)| reg.predict_row(features))
    }

    /// Estimate `param` for `record` with `model`.
    ///
    /// # Panics
    ///
    /// Panics if the (model, param) pair was not trained.
    pub fn estimate(&self, model: MlModelId, param: FpgaParam, record: &CircuitRecord) -> f64 {
        let features = extract_features(record, &self.layout);
        let reg = self
            .models
            .iter()
            .find(|((m, p), _)| *m == model && *p == param)
            .map(|(_, r)| r)
            .expect("model/param pair was trained");
        reg.predict_row(&features)
    }

    /// Estimate `param` for every record with `model`.
    pub fn estimate_all(
        &self,
        model: MlModelId,
        param: FpgaParam,
        records: &[CircuitRecord],
    ) -> Vec<f64> {
        records
            .iter()
            .map(|r| self.estimate(model, param, r))
            .collect()
    }

    /// [`TrainedZoo::estimate_all`] with a per-model `estimate/<model>`
    /// tracing span (items = records estimated). With a disabled recorder
    /// this is exactly [`TrainedZoo::estimate_all`] — no span name is even
    /// allocated.
    pub fn estimate_all_traced(
        &self,
        model: MlModelId,
        param: FpgaParam,
        records: &[CircuitRecord],
        recorder: &Recorder,
    ) -> Vec<f64> {
        if !recorder.is_enabled() {
            return self.estimate_all(model, param, records);
        }
        let name = format!("estimate/{}", model.label());
        let mut span = recorder.span(&name);
        span.add_items(records.len() as u64);
        self.estimate_all(model, param, records)
    }

    /// [`TrainedZoo::estimate_all`] on an explicit [`Runtime`]: records are
    /// estimated in parallel, results stay in record order.
    pub fn estimate_all_with(
        &self,
        model: MlModelId,
        param: FpgaParam,
        records: &[CircuitRecord],
        rt: &Runtime,
    ) -> Vec<f64> {
        rt.par_map(records, |_, r| self.estimate(model, param, r))
    }

    /// The `k` models with the highest validation fidelity for `param`,
    /// best first. `include_asic_regressions` controls whether ML1–ML3
    /// compete (the paper reports them separately in Table II).
    ///
    /// Ranking uses the workspace total-order policy: a NaN validation
    /// fidelity ranks *last*, so a degenerate model can only enter the
    /// top-k when fewer than `k` models scored a real fidelity.
    pub fn top_models(
        &self,
        param: FpgaParam,
        k: usize,
        include_asic_regressions: bool,
    ) -> Vec<MlModelId> {
        let mut rows: Vec<&FidelityRecord> = self
            .fidelities
            .iter()
            .filter(|f| f.param == param)
            .filter(|f| include_asic_regressions || !f.model.is_asic_regression())
            .collect();
        rows.sort_by(|a, b| afp_ord::desc(a.fidelity, b.fidelity));
        rows.into_iter().take(k).map(|f| f.model).collect()
    }

    /// The best plain ASIC-regression model (among ML1–ML3) for `param`.
    ///
    /// A NaN fidelity never wins; the result is `None` only when no
    /// ASIC-regression rows exist for `param` at all.
    pub fn best_asic_regression(&self, param: FpgaParam) -> Option<MlModelId> {
        self.fidelities
            .iter()
            .filter(|f| f.param == param && f.model.is_asic_regression())
            .max_by(|a, b| afp_ord::for_max(a.fidelity, b.fidelity))
            .map(|f| f.model)
    }

    /// Every ASIC-regression model for `param`, ranked best-first with
    /// NaN fidelities last. The first element matches
    /// [`TrainedZoo::best_asic_regression`] exactly, including its
    /// last-of-ties behaviour, so the flow can use this list as the
    /// promotion pool when a quarantined model is dropped.
    pub fn ranked_asic_regressions(&self, param: FpgaParam) -> Vec<MlModelId> {
        let mut rows: Vec<(usize, &FidelityRecord)> = self
            .fidelities
            .iter()
            .filter(|f| f.param == param && f.model.is_asic_regression())
            .enumerate()
            .collect();
        // `max_by` keeps the *last* of equal maxima; break fidelity ties
        // by descending position to reproduce that choice at rank 0.
        rows.sort_by(|(ia, a), (ib, b)| {
            afp_ord::desc(a.fidelity, b.fidelity).then_with(|| ib.cmp(ia))
        });
        rows.into_iter().map(|(_, f)| f.model).collect()
    }

    /// Wrap every trained regressor in a fault-injecting
    /// [`afp_ml::chaos::ChaosRegressor`], each on its own deterministic
    /// injection stream. Validation fidelities are left untouched (they
    /// were computed on the clean models); only *estimates* get corrupted,
    /// which is exactly the untrusted-input surface the quarantine stage
    /// defends.
    pub fn inject_chaos(&mut self, config: &afp_ml::chaos::ChaosConfig) {
        let models = std::mem::take(&mut self.models);
        self.models = models
            .into_iter()
            .map(|((id, param), m)| {
                let cfg = config.with_stream(pair_stream(id, param));
                ((id, param), afp_ml::chaos::ChaosRegressor::wrap(m, cfg))
            })
            .collect();
    }

    /// Like [`TrainedZoo::inject_chaos`], but only for the single
    /// `(model, param)` pair — the surgical variant used to test that a
    /// fully non-finite model is dropped and replaced.
    pub fn inject_chaos_for(
        &mut self,
        model: MlModelId,
        param: FpgaParam,
        config: &afp_ml::chaos::ChaosConfig,
    ) {
        let models = std::mem::take(&mut self.models);
        self.models = models
            .into_iter()
            .map(|((id, p), m)| {
                if id == model && p == param {
                    let cfg = config.with_stream(pair_stream(id, p));
                    ((id, p), afp_ml::chaos::ChaosRegressor::wrap(m, cfg))
                } else {
                    ((id, p), m)
                }
            })
            .collect();
    }
}

/// Stable per-(model, parameter) stream id for chaos injection.
fn pair_stream(model: MlModelId, param: FpgaParam) -> u64 {
    let mi = MlModelId::ALL.iter().position(|&m| m == model).unwrap_or(0) as u64;
    let pi = FpgaParam::ALL.iter().position(|&p| p == param).unwrap_or(0) as u64;
    mi * 64 + pi
}

/// Train every Table I model for every FPGA parameter on `train` records
/// and evaluate fidelity on `validate` records.
///
/// `tolerance` is the relative equality tolerance used in the fidelity
/// pair comparison (the paper treats near-equal parameters as equal; we
/// default to 1%).
pub fn train_zoo(
    records: &[CircuitRecord],
    train: &[usize],
    validate: &[usize],
    models: &[MlModelId],
    tolerance: f64,
) -> TrainedZoo {
    train_zoo_with(
        records,
        train,
        validate,
        models,
        tolerance,
        &Runtime::serial(),
        &Recorder::disabled(),
    )
}

/// [`train_zoo`] on an explicit [`Runtime`]: the `params × models` grid
/// trains in parallel. Each (model, parameter) fit is independent, so the
/// zoo — including the order of its fidelity table — is identical to the
/// serial build for any thread count.
///
/// Per-model `train/<model>` spans are recorded into `recorder`; workers
/// running concurrently each add their own wall time, so a stage's total
/// measures *work*, not latency.
#[allow(clippy::too_many_arguments)]
pub fn train_zoo_with(
    records: &[CircuitRecord],
    train: &[usize],
    validate: &[usize],
    models: &[MlModelId],
    tolerance: f64,
    rt: &Runtime,
    recorder: &Recorder,
) -> TrainedZoo {
    let layout = FeatureLayout::standard();
    let x_train = feature_matrix(records, train, &layout);
    let x_val = feature_matrix(records, validate, &layout);
    let targets = target_vectors(records, train, validate);
    let jobs: Vec<(FpgaParam, MlModelId)> = FpgaParam::ALL
        .iter()
        .flat_map(|&param| models.iter().map(move |&id| (param, id)))
        .collect();
    let results = rt.par_map(&jobs, |_, &(param, id)| {
        let (y_train, y_val) = &targets[&param];
        let mut model = build_model(id, layout.asic_columns());
        if afp_ml::zoo::fit_traced(model.as_mut(), id, &x_train, y_train, recorder).is_err() {
            // A singular fit (degenerate subset) scores zero fidelity
            // rather than aborting the flow.
            return (None, failed_fit(id, param));
        }
        let pred = model.predict(&x_val);
        let record = FidelityRecord {
            model: id,
            param,
            fidelity: fidelity(&pred, y_val, tolerance),
            r2: r2(&pred, y_val),
            mae: mae(&pred, y_val),
            pearson: pearson(&pred, y_val),
        };
        (Some(((id, param), model)), record)
    });
    let mut trained = Vec::new();
    let mut fidelities = Vec::with_capacity(results.len());
    for (model, record) in results {
        if let Some(m) = model {
            trained.push(m);
        }
        fidelities.push(record);
    }
    TrainedZoo {
        layout,
        models: trained,
        fidelities,
    }
}

/// The per-parameter (train, validation) target vectors.
fn target_vectors(
    records: &[CircuitRecord],
    train: &[usize],
    validate: &[usize],
) -> std::collections::BTreeMap<FpgaParam, (Vec<f64>, Vec<f64>)> {
    FpgaParam::ALL
        .iter()
        .map(|&param| {
            let y_train: Vec<f64> = train
                .iter()
                .map(|&i| records[i].fpga_param(param))
                .collect();
            let y_val: Vec<f64> = validate
                .iter()
                .map(|&i| records[i].fpga_param(param))
                .collect();
            (param, (y_train, y_val))
        })
        .collect()
}

fn failed_fit(model: MlModelId, param: FpgaParam) -> FidelityRecord {
    FidelityRecord {
        model,
        param,
        fidelity: 0.0,
        r2: f64::NEG_INFINITY,
        mae: f64::INFINITY,
        pearson: 0.0,
    }
}

/// Like [`train_zoo`], but runs the paper's "Modification of ML
/// parameters" loop (Fig. 2): every model is trained once per
/// configuration in its hyperparameter grid
/// ([`afp_ml::tuning::hyper_grid`]) and the configuration with the best
/// validation fidelity is kept per (model, parameter) pair.
///
/// Returns the zoo plus, for bookkeeping, the chosen configuration label
/// per (model, parameter).
pub fn train_zoo_tuned(
    records: &[CircuitRecord],
    train: &[usize],
    validate: &[usize],
    models: &[MlModelId],
    tolerance: f64,
) -> (TrainedZoo, ChosenLabels) {
    train_zoo_tuned_with(
        records,
        train,
        validate,
        models,
        tolerance,
        &Runtime::serial(),
        &Recorder::disabled(),
    )
}

/// [`train_zoo_tuned`] on an explicit [`Runtime`]: one parallel task per
/// (model, parameter) pair, each sweeping its hyperparameter grid. Every
/// grid fit adds to the model's `train/<model>` span.
#[allow(clippy::too_many_arguments)]
pub fn train_zoo_tuned_with(
    records: &[CircuitRecord],
    train: &[usize],
    validate: &[usize],
    models: &[MlModelId],
    tolerance: f64,
    rt: &Runtime,
    recorder: &Recorder,
) -> (TrainedZoo, ChosenLabels) {
    let layout = FeatureLayout::standard();
    let x_train = feature_matrix(records, train, &layout);
    let x_val = feature_matrix(records, validate, &layout);
    let targets = target_vectors(records, train, validate);
    let jobs: Vec<(FpgaParam, MlModelId)> = FpgaParam::ALL
        .iter()
        .flat_map(|&param| models.iter().map(move |&id| (param, id)))
        .collect();
    type Tuned = (
        Option<((MlModelId, FpgaParam), Box<dyn Regressor>, String)>,
        FidelityRecord,
    );
    let results: Vec<Tuned> = rt.par_map(&jobs, |_, &(param, id)| {
        let (y_train, y_val) = &targets[&param];
        let mut best: Option<(FidelityRecord, Box<dyn Regressor>, String)> = None;
        for candidate in afp_ml::tuning::hyper_grid(id, layout.asic_columns()) {
            let mut model = candidate.model;
            if afp_ml::zoo::fit_traced(model.as_mut(), id, &x_train, y_train, recorder).is_err() {
                continue;
            }
            let pred = model.predict(&x_val);
            let record = FidelityRecord {
                model: id,
                param,
                fidelity: fidelity(&pred, y_val, tolerance),
                r2: r2(&pred, y_val),
                mae: mae(&pred, y_val),
                pearson: pearson(&pred, y_val),
            };
            let better = best
                .as_ref()
                .is_none_or(|(b, _, _)| record.fidelity > b.fidelity);
            if better {
                best = Some((record, model, candidate.label));
            }
        }
        match best {
            Some((record, model, label)) => (Some(((id, param), model, label)), record),
            None => (None, failed_fit(id, param)),
        }
    });
    let mut trained = Vec::new();
    let mut fidelities = Vec::with_capacity(results.len());
    let mut chosen_labels = Vec::new();
    for (best, record) in results {
        if let Some((key, model, label)) = best {
            trained.push((key, model));
            chosen_labels.push((key, label));
        }
        fidelities.push(record);
    }
    (
        TrainedZoo {
            layout,
            models: trained,
            fidelities,
        },
        chosen_labels,
    )
}

/// Assemble the feature matrix of the selected records.
pub fn feature_matrix(
    records: &[CircuitRecord],
    indices: &[usize],
    layout: &FeatureLayout,
) -> Matrix {
    let rows: Vec<Vec<f64>> = indices
        .iter()
        .map(|&i| extract_features(&records[i], layout))
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Matrix::from_rows(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{characterize_library, sample_subset, train_validate_split};
    use afp_circuits::{build_library, ArithKind, LibrarySpec};

    fn small_zoo() -> (Vec<CircuitRecord>, TrainedZoo) {
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 80));
        let records = characterize_library(
            &lib,
            &afp_asic::AsicConfig::default(),
            &afp_fpga::FpgaConfig::default(),
            &afp_error::ErrorConfig::default(),
        );
        let subset = sample_subset(records.len(), 0.5, 30, 11);
        let (train, val) = train_validate_split(&subset, 0.8, 11);
        // A fast representative subset of the zoo for tests.
        let models = [
            MlModelId::Ml1,
            MlModelId::Ml3,
            MlModelId::Ml11,
            MlModelId::Ml14,
            MlModelId::Ml16,
            MlModelId::Ml18,
        ];
        let zoo = train_zoo(&records, &train, &val, &models, 0.01);
        (records, zoo)
    }

    #[test]
    fn zoo_trains_and_scores_all_pairs() {
        let (_, zoo) = small_zoo();
        assert_eq!(zoo.fidelities.len(), 6 * 3);
        for f in &zoo.fidelities {
            assert!((0.0..=1.0).contains(&f.fidelity), "{:?}", f);
        }
    }

    #[test]
    fn good_models_achieve_high_area_fidelity() {
        let (_, zoo) = small_zoo();
        let best = zoo
            .fidelities
            .iter()
            .filter(|f| f.param == FpgaParam::Area && !f.model.is_asic_regression())
            .map(|f| f.fidelity)
            .fold(0.0f64, f64::max);
        assert!(best > 0.75, "best area fidelity only {best}");
    }

    #[test]
    fn top_models_are_sorted_and_filtered() {
        let (_, zoo) = small_zoo();
        let top = zoo.top_models(FpgaParam::Area, 3, false);
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|m| !m.is_asic_regression()));
        let fid_of = |m: MlModelId| {
            zoo.fidelities
                .iter()
                .find(|f| f.model == m && f.param == FpgaParam::Area)
                .unwrap()
                .fidelity
        };
        assert!(fid_of(top[0]) >= fid_of(top[1]));
        assert!(fid_of(top[1]) >= fid_of(top[2]));
    }

    #[test]
    fn best_asic_regression_is_one_of_ml1_to_ml3() {
        let (_, zoo) = small_zoo();
        let best = zoo.best_asic_regression(FpgaParam::Power).unwrap();
        assert!(best.is_asic_regression());
    }

    #[test]
    fn tuned_zoo_never_scores_below_untuned() {
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 70));
        let records = characterize_library(
            &lib,
            &afp_asic::AsicConfig::default(),
            &afp_fpga::FpgaConfig::default(),
            &afp_error::ErrorConfig::default(),
        );
        let subset = sample_subset(records.len(), 0.6, 30, 2);
        let (train, val) = train_validate_split(&subset, 0.8, 2);
        let models = [
            MlModelId::Ml10,
            MlModelId::Ml14,
            MlModelId::Ml16,
            MlModelId::Ml18,
        ];
        let base = train_zoo(&records, &train, &val, &models, 0.01);
        let (tuned, labels) = train_zoo_tuned(&records, &train, &val, &models, 0.01);
        assert_eq!(labels.len(), models.len() * FpgaParam::ALL.len());
        for f_base in &base.fidelities {
            let f_tuned = tuned
                .fidelities
                .iter()
                .find(|f| f.model == f_base.model && f.param == f_base.param)
                .expect("same grid");
            // The default config is in every grid, so tuning can't lose.
            assert!(
                f_tuned.fidelity >= f_base.fidelity - 1e-12,
                "{} {:?}: tuned {} < untuned {}",
                f_base.model,
                f_base.param,
                f_tuned.fidelity,
                f_base.fidelity
            );
        }
        // Labels refer to real grid entries.
        for ((id, _), label) in &labels {
            let grid = afp_ml::tuning::hyper_grid(*id, tuned.layout().asic_columns());
            assert!(grid.iter().any(|c| &c.label == label), "{id}: {label}");
        }
    }

    fn hand_zoo(fids: &[(MlModelId, f64)]) -> TrainedZoo {
        TrainedZoo {
            layout: FeatureLayout::standard(),
            models: Vec::new(),
            fidelities: fids
                .iter()
                .map(|&(model, fidelity)| FidelityRecord {
                    model,
                    param: FpgaParam::Area,
                    fidelity,
                    r2: 0.0,
                    mae: 0.0,
                    pearson: 0.0,
                })
                .collect(),
        }
    }

    #[test]
    fn nan_fidelity_ranks_last_not_top() {
        let zoo = hand_zoo(&[
            (MlModelId::Ml1, f64::NAN),
            (MlModelId::Ml2, 0.4),
            (MlModelId::Ml3, 0.9),
            (MlModelId::Ml11, f64::NAN),
            (MlModelId::Ml14, 0.7),
            (MlModelId::Ml18, 0.8),
        ]);
        // The planted NaN row must not float into the top-k.
        assert_eq!(
            zoo.top_models(FpgaParam::Area, 2, false),
            vec![MlModelId::Ml18, MlModelId::Ml14]
        );
        // With k spanning everything, NaN sits strictly last.
        assert_eq!(
            zoo.top_models(FpgaParam::Area, 10, false),
            vec![MlModelId::Ml18, MlModelId::Ml14, MlModelId::Ml11]
        );
        // A NaN ASIC-regression fidelity never wins the ML1–ML3 slot.
        assert_eq!(
            zoo.best_asic_regression(FpgaParam::Area),
            Some(MlModelId::Ml3)
        );
        assert_eq!(
            zoo.ranked_asic_regressions(FpgaParam::Area),
            vec![MlModelId::Ml3, MlModelId::Ml2, MlModelId::Ml1]
        );
        // No rows at all for another parameter.
        assert_eq!(zoo.best_asic_regression(FpgaParam::Power), None);
    }

    #[test]
    fn ranked_asic_regressions_head_matches_best_on_ties() {
        let zoo = hand_zoo(&[
            (MlModelId::Ml1, 0.5),
            (MlModelId::Ml2, 0.5),
            (MlModelId::Ml3, 0.5),
        ]);
        let best = zoo.best_asic_regression(FpgaParam::Area).unwrap();
        let ranked = zoo.ranked_asic_regressions(FpgaParam::Area);
        assert_eq!(ranked[0], best);
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn all_nan_fidelities_still_rank_totally() {
        let zoo = hand_zoo(&[(MlModelId::Ml11, f64::NAN), (MlModelId::Ml14, f64::NAN)]);
        // No panic, deterministic order (stable sort keeps row order).
        assert_eq!(
            zoo.top_models(FpgaParam::Area, 5, false),
            vec![MlModelId::Ml11, MlModelId::Ml14]
        );
    }

    #[test]
    fn estimates_correlate_with_truth() {
        let (records, zoo) = small_zoo();
        let est = zoo.estimate_all(MlModelId::Ml18, FpgaParam::Area, &records);
        let truth: Vec<f64> = records
            .iter()
            .map(|r| r.fpga_param(FpgaParam::Area))
            .collect();
        assert!(afp_ml::metrics::pearson(&est, &truth) > 0.7);
    }
}

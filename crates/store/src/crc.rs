//! CRC-32 (IEEE 802.3 polynomial) used to checksum every frame body.
//!
//! Hand-rolled because the workspace is dependency-free by policy; the
//! table is built at compile time so the runtime cost is one lookup per
//! byte.

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state. Feed bytes with [`Crc32::update`], read the
/// checksum with [`Crc32::finish`].
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Fold `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"frame body under test".to_vec();
        let before = crc32(&data);
        data[4] ^= 0x10;
        assert_ne!(crc32(&data), before);
    }
}

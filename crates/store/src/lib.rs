//! `afp-store` — a framed, content-addressed binary record store.
//!
//! The crate replaces the plain-CSV disk tier for library-scale data: a
//! store file is a fixed 16-byte header followed by CRC-checked,
//! length-prefixed frames keyed by [`afp_runtime::Key128`], optionally
//! ending in an index footer that lets readers seek without scanning
//! (zstd-style framing; the block codec id byte reserves space for
//! external codecs, with a built-in safe-Rust LZ codec shipped today).
//! See `DESIGN.md` ("Circuit store") for the byte-level layout.
//!
//! Three layers build on the format:
//!
//! * [`frame`] — header/frame/index encode + decode, [`StoreWriter`]
//!   (batching, compressing, sealing), full-file [`frame::scan_bytes`]
//!   recovery, and [`inspect`] for cheap file stats.
//! * [`stream`] — [`FrameStream`], a lazy iterator decoding one frame at
//!   a time so corpora never need to be fully resident.
//! * [`tier`] — [`StoreTier`], the drop-in binary sibling of
//!   [`afp_runtime::DiskTier`] (load-on-open, append-and-flush, torn-tail
//!   repair, block compaction), plus one-shot CSV migration.
//!
//! [`netcode`] defines the varint-packed netlist payload encoding
//! (`gate kind / fanin back-delta`) shared by the circuit store in
//! `afp-circuits` and any record type embedding netlists.
//!
//! # Example
//!
//! ```
//! use afp_runtime::Key128;
//! use afp_store::{FrameStream, StoreWriter};
//!
//! let dir = std::env::temp_dir().join(format!("afp-store-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("demo.afps");
//!
//! let mut writer = StoreWriter::create(&path, 1).unwrap();
//! writer.append(Key128 { hi: 1, lo: 2 }, b"payload").unwrap();
//! writer.finish_sealed().unwrap();
//!
//! let records: Vec<_> = FrameStream::open(&path).unwrap().collect();
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].payload, b"payload");
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod crc;
pub mod frame;
pub mod lz;
pub mod netcode;
pub mod stream;
pub mod tier;

pub use bytes::ByteReader;
pub use frame::{inspect, RawRecord, StoreInfo, StoreWriter};
pub use netcode::{decode_netlist, encode_netlist};
pub use stream::FrameStream;
pub use tier::{migrate_csv, BinRecord, CsvMigration, StoreTier};

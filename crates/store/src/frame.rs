//! The on-disk frame format: fixed header, CRC-checked frames, block
//! compression, and the seekable index footer.
//!
//! ```text
//! file   := header frame* [index trailer]
//! header := magic "AFPS" | format_version u16 LE | flags u16 LE
//!           | record_version u32 LE | reserved u32 LE        (16 bytes)
//! frame  := tag u8 | body_len u32 LE | body | crc32 u32 LE
//! ```
//!
//! The CRC covers the tag byte plus the body, so a frame whose tag byte is
//! torn fails the checksum just like a torn body. Three tags are defined:
//!
//! * `TAG_RECORD` (1): one record — `key.hi u64 LE | key.lo u64 LE |
//!   payload`. Written by the append path, one frame per record, so a
//!   crash loses at most the frame being written.
//! * `TAG_BLOCK` (2): a compressed batch — `codec u8 | count uvarint |
//!   raw_len uvarint | codec-encoded data`. The uncompressed data is a
//!   concatenation of `key.hi u64 LE | key.lo u64 LE | payload_len
//!   uvarint | payload` entries. Codec 0 is raw (stored), codec 1 is the
//!   built-in LZ codec; further ids are reserved for external codecs such
//!   as zstd.
//! * `TAG_INDEX` (15): the footer index — `record_count uvarint |
//!   frame_count uvarint`, then per data frame `offset_delta uvarint |
//!   records uvarint`. Only present in sealed files.
//!
//! A sealed file ends with the index frame followed by an 8-byte trailer:
//! `index_frame_len u32 LE | "SFPA"`. Readers locate the index by reading
//! the trailer from EOF and seeking back, so opening a sealed store never
//! scans the data frames. Unsealed (append-mode) files simply end after
//! the last record frame; readers scan those front to back and stop at the
//! first torn or corrupt frame, mirroring how the CSV tier skips malformed
//! rows.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use afp_runtime::Key128;

use crate::bytes::{put_uvarint, ByteReader};
use crate::crc::Crc32;
use crate::lz;

/// File magic, first four bytes of every store file.
pub const MAGIC: [u8; 4] = *b"AFPS";
/// Reversed magic closing the 8-byte trailer of a sealed file.
pub const TRAILER_MAGIC: [u8; 4] = *b"SFPA";
/// Current container format version (frame layout, not record payloads).
pub const FORMAT_VERSION: u16 = 1;
/// Header flag bit: file is sealed (ends with index frame + trailer).
pub const FLAG_SEALED: u16 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: u64 = 16;
/// Per-frame overhead: tag byte, body length word, CRC word.
pub const FRAME_OVERHEAD: usize = 9;
/// Trailer length of a sealed file.
pub const TRAILER_LEN: u64 = 8;

/// Frame tag: a single record.
pub const TAG_RECORD: u8 = 1;
/// Frame tag: a compressed record block.
pub const TAG_BLOCK: u8 = 2;
/// Frame tag: the index footer of a sealed file.
pub const TAG_INDEX: u8 = 0x0F;

/// Block codec id: stored uncompressed.
pub const CODEC_RAW: u8 = 0;
/// Block codec id: built-in LZ codec ([`crate::lz`]).
pub const CODEC_LZ: u8 = 1;

/// Records per block frame when batch-writing.
pub const BLOCK_RECORDS: usize = 256;

/// Parsed store header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Container format version ([`FORMAT_VERSION`]).
    pub format_version: u16,
    /// Flag bits; see [`FLAG_SEALED`].
    pub flags: u16,
    /// Version of the record payload encoding, owned by the record type.
    pub record_version: u32,
}

impl Header {
    /// Whether the sealed flag is set.
    pub fn sealed(&self) -> bool {
        self.flags & FLAG_SEALED != 0
    }

    /// Serialize to the fixed 16-byte layout.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..6].copy_from_slice(&self.format_version.to_le_bytes());
        out[6..8].copy_from_slice(&self.flags.to_le_bytes());
        out[8..12].copy_from_slice(&self.record_version.to_le_bytes());
        out
    }

    /// Parse a 16-byte header; `None` if the magic or length is wrong.
    pub fn parse(bytes: &[u8]) -> Option<Header> {
        let mut r = ByteReader::new(bytes);
        if r.bytes(4)? != MAGIC {
            return None;
        }
        let format_version = r.u16_le()?;
        let flags = r.u16_le()?;
        let record_version = r.u32_le()?;
        let _reserved = r.u32_le()?;
        Some(Header {
            format_version,
            flags,
            record_version,
        })
    }
}

/// One decoded record: key plus its payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawRecord {
    /// Content-address of the record.
    pub key: Key128,
    /// Record payload (the [`crate::BinRecord`] encoding).
    pub payload: Vec<u8>,
}

/// Append one framed record (`TAG_RECORD`) to `out`.
pub fn put_record_frame(out: &mut Vec<u8>, key: Key128, payload: &[u8]) {
    let mut body = Vec::with_capacity(16 + payload.len());
    body.extend_from_slice(&key.hi.to_le_bytes());
    body.extend_from_slice(&key.lo.to_le_bytes());
    body.extend_from_slice(payload);
    put_frame(out, TAG_RECORD, &body);
}

/// Append a block frame (`TAG_BLOCK`) holding `records`, compressed with
/// the built-in LZ codec when that pays, stored raw otherwise.
pub fn put_block_frame(out: &mut Vec<u8>, records: &[(Key128, Vec<u8>)]) {
    let mut raw = Vec::new();
    for (key, payload) in records {
        raw.extend_from_slice(&key.hi.to_le_bytes());
        raw.extend_from_slice(&key.lo.to_le_bytes());
        put_uvarint(&mut raw, payload.len() as u64);
        raw.extend_from_slice(payload);
    }
    put_block_frame_raw(out, records.len(), &raw);
}

/// Append a block frame (`TAG_BLOCK`) from a pre-concatenated entry buffer
/// (`count` entries of `key.hi u64 LE | key.lo u64 LE | payload_len
/// uvarint | payload`). This is the zero-copy path [`StoreWriter::append`]
/// builds incrementally, so payloads are never cloned into a per-record
/// `Vec` first.
pub fn put_block_frame_raw(out: &mut Vec<u8>, count: usize, raw: &[u8]) {
    let packed = lz::compress(raw);
    let (codec, data) = if packed.len() < raw.len() {
        (CODEC_LZ, packed.as_slice())
    } else {
        (CODEC_RAW, raw)
    };
    let mut body = Vec::with_capacity(data.len() + 16);
    body.push(codec);
    put_uvarint(&mut body, count as u64);
    put_uvarint(&mut body, raw.len() as u64);
    body.extend_from_slice(data);
    put_frame(out, TAG_BLOCK, &body);
}

fn put_frame(out: &mut Vec<u8>, tag: u8, body: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    let mut crc = Crc32::new();
    crc.update(&[tag]);
    crc.update(body);
    out.extend_from_slice(&crc.finish().to_le_bytes());
}

/// Decode the records of one frame body into `sink`. Returns `None` when
/// the body is malformed (callers treat the frame as corrupt).
pub fn decode_frame_records(tag: u8, body: &[u8], sink: &mut Vec<RawRecord>) -> Option<usize> {
    match tag {
        TAG_RECORD => {
            let mut r = ByteReader::new(body);
            let key = Key128 {
                hi: r.u64_le()?,
                lo: r.u64_le()?,
            };
            sink.push(RawRecord {
                key,
                payload: r.bytes(r.remaining())?.to_vec(),
            });
            Some(1)
        }
        TAG_BLOCK => {
            let mut r = ByteReader::new(body);
            let codec = r.u8()?;
            let count = r.uvarint()? as usize;
            let raw_len = r.uvarint()? as usize;
            let data = r.bytes(r.remaining())?;
            let raw = match codec {
                CODEC_RAW => {
                    if data.len() != raw_len {
                        return None;
                    }
                    data.to_vec()
                }
                CODEC_LZ => lz::decompress(data, raw_len)?,
                _ => return None, // reserved codec: treat as unreadable
            };
            let mut r = ByteReader::new(&raw);
            for _ in 0..count {
                let key = Key128 {
                    hi: r.u64_le()?,
                    lo: r.u64_le()?,
                };
                let len = r.uvarint()? as usize;
                sink.push(RawRecord {
                    key,
                    payload: r.bytes(len)?.to_vec(),
                });
            }
            if !r.is_empty() {
                return None;
            }
            Some(count)
        }
        _ => Some(0), // unknown tag: skip but keep scanning (forward compat)
    }
}

/// Result of scanning a store file front to back.
#[derive(Clone, Debug)]
pub struct Scan {
    /// Parsed header.
    pub header: Header,
    /// All records recovered from valid data frames, in file order.
    pub records: Vec<RawRecord>,
    /// Byte offset just past the last valid *data* frame (the index frame
    /// and trailer of a sealed file are excluded). Reopening for append
    /// truncates to this offset.
    pub data_len: u64,
    /// Number of data frames seen (records + blocks + unknown tags).
    pub frames: u64,
    /// Number of `TAG_RECORD` frames (the compaction trigger counts these).
    pub record_frames: u64,
    /// Whether a torn or corrupt tail frame was dropped.
    pub truncated: bool,
}

/// Scan an in-memory store image. Stops at the first torn or corrupt
/// frame; everything before it is kept (torn-tail recovery).
pub fn scan_bytes(bytes: &[u8]) -> Option<Scan> {
    let header = Header::parse(bytes.get(0..HEADER_LEN as usize)?)?;
    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut data_len = pos as u64;
    let mut frames = 0u64;
    let mut record_frames = 0u64;
    let mut truncated = false;

    while pos < bytes.len() {
        let Some((tag, body, next)) = read_frame_at(bytes, pos) else {
            truncated = true;
            break;
        };
        if tag == TAG_INDEX {
            // Sealed footer: data frames end here. Anything after it other
            // than the trailer is unexpected but harmless to ignore.
            break;
        }
        if decode_frame_records(tag, body, &mut records).is_none() {
            truncated = true;
            break;
        }
        frames += 1;
        if tag == TAG_RECORD {
            record_frames += 1;
        }
        pos = next;
        data_len = pos as u64;
    }

    Some(Scan {
        header,
        records,
        data_len,
        frames,
        record_frames,
        truncated,
    })
}

/// Read and CRC-check the frame at `pos`. Returns `(tag, body, next_pos)`
/// or `None` for a torn or corrupt frame.
fn read_frame_at(bytes: &[u8], pos: usize) -> Option<(u8, &[u8], usize)> {
    let tag = *bytes.get(pos)?;
    let len_bytes = bytes.get(pos + 1..pos + 5)?;
    let body_len =
        u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
    let body_start = pos + 5;
    let body_end = body_start.checked_add(body_len)?;
    let crc_end = body_end.checked_add(4)?;
    if crc_end > bytes.len() {
        return None;
    }
    let body = &bytes[body_start..body_end];
    let want = u32::from_le_bytes([
        bytes[body_end],
        bytes[body_end + 1],
        bytes[body_end + 2],
        bytes[body_end + 3],
    ]);
    let mut crc = Crc32::new();
    crc.update(&[tag]);
    crc.update(body);
    if crc.finish() != want {
        return None;
    }
    Some((tag, body, crc_end))
}

/// One entry of the sealed-file index: where a data frame starts and how
/// many records it holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Absolute byte offset of the frame.
    pub offset: u64,
    /// Records decoded from the frame.
    pub records: u64,
}

/// Encode the index frame plus trailer for a sealed file.
pub fn put_index_and_trailer(out: &mut Vec<u8>, entries: &[IndexEntry]) {
    let mut body = Vec::new();
    let total: u64 = entries.iter().map(|e| e.records).sum();
    put_uvarint(&mut body, total);
    put_uvarint(&mut body, entries.len() as u64);
    let mut prev = HEADER_LEN;
    for e in entries {
        put_uvarint(&mut body, e.offset - prev);
        put_uvarint(&mut body, e.records);
        prev = e.offset;
    }
    let before = out.len();
    put_frame(out, TAG_INDEX, &body);
    let frame_len = (out.len() - before) as u32;
    out.extend_from_slice(&frame_len.to_le_bytes());
    out.extend_from_slice(&TRAILER_MAGIC);
}

/// Summary of a sealed-file index footer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexSummary {
    /// Total records across all data frames.
    pub records: u64,
    /// Per-frame offsets and record counts.
    pub entries: Vec<IndexEntry>,
}

/// Decode an index frame body.
pub fn parse_index_body(body: &[u8]) -> Option<IndexSummary> {
    let mut r = ByteReader::new(body);
    let records = r.uvarint()?;
    let frames = r.uvarint()? as usize;
    let mut entries = Vec::with_capacity(frames);
    let mut prev = HEADER_LEN;
    for _ in 0..frames {
        let offset = prev + r.uvarint()?;
        let count = r.uvarint()?;
        entries.push(IndexEntry {
            offset,
            records: count,
        });
        prev = offset;
    }
    if !r.is_empty() {
        return None;
    }
    Some(IndexSummary { records, entries })
}

/// Read the index of a sealed file by seeking from EOF, without scanning
/// the data frames. Returns `None` when the file is unsealed or the
/// footer is damaged (callers fall back to a full scan).
pub fn read_index(file: &mut File) -> io::Result<Option<IndexSummary>> {
    let len = file.seek(SeekFrom::End(0))?;
    if len < HEADER_LEN + TRAILER_LEN {
        return Ok(None);
    }
    file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
    let mut trailer = [0u8; 8];
    file.read_exact(&mut trailer)?;
    if trailer[4..8] != TRAILER_MAGIC {
        return Ok(None);
    }
    let frame_len = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]) as u64;
    if frame_len + TRAILER_LEN + HEADER_LEN > len || frame_len < FRAME_OVERHEAD as u64 {
        return Ok(None);
    }
    file.seek(SeekFrom::End(-((TRAILER_LEN + frame_len) as i64)))?;
    let mut frame = vec![0u8; frame_len as usize];
    file.read_exact(&mut frame)?;
    if frame[0] != TAG_INDEX {
        return Ok(None);
    }
    let Some((tag, body, next)) = read_frame_at(&frame, 0) else {
        return Ok(None);
    };
    if tag != TAG_INDEX || next != frame.len() {
        return Ok(None);
    }
    Ok(parse_index_body(body))
}

/// Streaming store writer: batches records into compressed block frames
/// and (optionally) seals the file with an index footer.
///
/// Dropping the writer without calling [`StoreWriter::finish`] or
/// [`StoreWriter::finish_sealed`] leaves whatever frames were already
/// flushed — readers recover those and drop the unwritten tail, the same
/// crash story as the append path. Writers opened with
/// [`StoreWriter::create_atomic`] instead leave the destination untouched
/// until a `finish*` call renames the finished temp sibling over it.
pub struct StoreWriter {
    file: File,
    /// Pre-concatenated block entries awaiting the next flush (the
    /// `put_block_frame_raw` layout), built incrementally so append never
    /// clones the caller's payload.
    raw: Vec<u8>,
    /// Entries currently queued in `raw`.
    pending: usize,
    entries: Vec<IndexEntry>,
    offset: u64,
    records: u64,
    /// `(tmp, dest)` when writing atomically: rename on finish.
    persist_to: Option<(PathBuf, PathBuf)>,
}

impl StoreWriter {
    /// Create (truncate) `path` and write an unsealed header for records
    /// of version `record_version`.
    pub fn create(path: &Path, record_version: u32) -> io::Result<StoreWriter> {
        let mut file = File::create(path)?;
        let header = Header {
            format_version: FORMAT_VERSION,
            flags: 0,
            record_version,
        };
        file.write_all(&header.to_bytes())?;
        Ok(StoreWriter {
            file,
            raw: Vec::new(),
            pending: 0,
            entries: Vec::new(),
            offset: HEADER_LEN,
            records: 0,
            persist_to: None,
        })
    }

    /// Like [`StoreWriter::create`], but crash-safe for rewrites: frames
    /// go to a `.tmp` sibling and `path` is only replaced — atomically,
    /// via rename — when [`StoreWriter::finish`] or
    /// [`StoreWriter::finish_sealed`] succeeds. A crash mid-write leaves
    /// any existing file at `path` exactly as it was.
    pub fn create_atomic(path: &Path, record_version: u32) -> io::Result<StoreWriter> {
        let name = path.file_name().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "store path has no file name")
        })?;
        let mut tmp_name = name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let mut writer = StoreWriter::create(&tmp, record_version)?;
        writer.persist_to = Some((tmp, path.to_path_buf()));
        Ok(writer)
    }

    /// Queue one record; flushes a block frame every [`BLOCK_RECORDS`].
    pub fn append(&mut self, key: Key128, payload: &[u8]) -> io::Result<()> {
        self.raw.extend_from_slice(&key.hi.to_le_bytes());
        self.raw.extend_from_slice(&key.lo.to_le_bytes());
        put_uvarint(&mut self.raw, payload.len() as u64);
        self.raw.extend_from_slice(payload);
        self.pending += 1;
        self.records += 1;
        if self.pending >= BLOCK_RECORDS {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Records queued or written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        let mut buf = Vec::new();
        put_block_frame_raw(&mut buf, self.pending, &self.raw);
        self.entries.push(IndexEntry {
            offset: self.offset,
            records: self.pending as u64,
        });
        self.file.write_all(&buf)?;
        self.offset += buf.len() as u64;
        self.pending = 0;
        self.raw.clear();
        Ok(())
    }

    /// Rename the finished temp sibling over the destination (atomic mode
    /// only; a plain `create` writer has nothing to do here).
    fn persist(&mut self) -> io::Result<()> {
        if let Some((tmp, dest)) = self.persist_to.take() {
            // Durability before visibility: the rename must only ever
            // expose fully-flushed bytes.
            self.file.sync_all()?;
            std::fs::rename(tmp, dest)?;
        }
        Ok(())
    }

    /// Flush remaining records and finish as an *unsealed* file (valid for
    /// later appends).
    pub fn finish(mut self) -> io::Result<()> {
        self.flush_block()?;
        self.file.flush()?;
        self.persist()
    }

    /// Flush remaining records, write the index footer and trailer, and
    /// set the sealed header flag.
    pub fn finish_sealed(mut self) -> io::Result<()> {
        self.flush_block()?;
        let mut buf = Vec::new();
        put_index_and_trailer(&mut buf, &self.entries);
        self.file.write_all(&buf)?;
        // Patch the sealed bit into the already-written header; done last
        // so a crash mid-seal leaves a readable unsealed file.
        self.file.seek(SeekFrom::Start(6))?;
        self.file.write_all(&FLAG_SEALED.to_le_bytes())?;
        self.file.flush()?;
        self.persist()
    }
}

/// Lightweight facts about a store file, for `afp cache stats`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreInfo {
    /// Container format version.
    pub format_version: u16,
    /// Record payload version.
    pub record_version: u32,
    /// Whether the file is sealed with an index footer.
    pub sealed: bool,
    /// Record count (from the index when sealed, else by scanning).
    pub records: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Whether a torn tail frame was detected (scan path only).
    pub truncated: bool,
}

/// Inspect a store file without decoding record payloads.
///
/// Sealed files are answered from the header and the index footer alone
/// (three small reads, O(1) in file size); only unsealed files — or
/// sealed files whose footer turns out damaged — fall back to a full
/// frame scan.
pub fn inspect(path: &Path) -> io::Result<StoreInfo> {
    let mut file = File::open(path)?;
    let mut header_bytes = [0u8; HEADER_LEN as usize];
    let header = match file.read_exact(&mut header_bytes) {
        Ok(()) => Header::parse(&header_bytes),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => None,
        Err(e) => return Err(e),
    };
    let Some(header) = header else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a store file (bad header)",
        ));
    };
    if header.sealed() {
        if let Some(index) = read_index(&mut file)? {
            return Ok(StoreInfo {
                format_version: header.format_version,
                record_version: header.record_version,
                sealed: true,
                records: index.records,
                bytes: file.seek(SeekFrom::End(0))?,
                truncated: false,
            });
        }
    }
    let bytes = std::fs::read(path)?;
    let scan = scan_bytes(&bytes).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "not a store file (bad header)")
    })?;
    Ok(StoreInfo {
        format_version: scan.header.format_version,
        record_version: scan.header.record_version,
        sealed: scan.header.sealed(),
        records: scan.records.len() as u64,
        bytes: bytes.len() as u64,
        truncated: scan.truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Key128 {
        Key128 {
            hi: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            lo: !i,
        }
    }

    fn header_bytes() -> Vec<u8> {
        Header {
            format_version: FORMAT_VERSION,
            flags: 0,
            record_version: 7,
        }
        .to_bytes()
        .to_vec()
    }

    #[test]
    fn header_round_trips() {
        let h = Header {
            format_version: 3,
            flags: FLAG_SEALED,
            record_version: 42,
        };
        let parsed = Header::parse(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
        assert!(parsed.sealed());
        assert_eq!(Header::parse(b"NOPE000000000000"), None);
    }

    #[test]
    fn record_frames_scan_back() {
        let mut bytes = header_bytes();
        for i in 0..5u64 {
            put_record_frame(&mut bytes, key(i), format!("payload-{i}").as_bytes());
        }
        let scan = scan_bytes(&bytes).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.record_frames, 5);
        assert!(!scan.truncated);
        assert_eq!(scan.data_len, bytes.len() as u64);
        assert_eq!(scan.records[3].key, key(3));
        assert_eq!(scan.records[3].payload, b"payload-3");
    }

    #[test]
    fn block_frame_round_trips_and_compresses() {
        let records: Vec<(Key128, Vec<u8>)> = (0..200u64)
            .map(|i| (key(i), format!("gate and xor not {i} {i} {i}").into_bytes()))
            .collect();
        let mut bytes = header_bytes();
        put_block_frame(&mut bytes, &records);
        let raw_total: usize = records.iter().map(|(_, p)| p.len() + 16).sum();
        assert!(
            bytes.len() < raw_total,
            "block should compress: {} vs {raw_total}",
            bytes.len()
        );
        let scan = scan_bytes(&bytes).unwrap();
        assert_eq!(scan.records.len(), 200);
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.key, records[i].0);
            assert_eq!(rec.payload, records[i].1);
        }
    }

    #[test]
    fn torn_tail_is_dropped_but_prefix_survives() {
        let mut bytes = header_bytes();
        put_record_frame(&mut bytes, key(1), b"first");
        let good_len = bytes.len();
        put_record_frame(&mut bytes, key(2), b"second-to-be-torn");
        bytes.truncate(good_len + 7); // tear mid-frame
        let scan = scan_bytes(&bytes).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncated);
        assert_eq!(scan.data_len, good_len as u64);
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let mut bytes = header_bytes();
        put_record_frame(&mut bytes, key(1), b"ok");
        let keep = bytes.len();
        put_record_frame(&mut bytes, key(2), b"will corrupt");
        let idx = keep + 10;
        bytes[idx] ^= 0xFF;
        let scan = scan_bytes(&bytes).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncated);
    }

    #[test]
    fn unknown_tags_are_skipped() {
        let mut bytes = header_bytes();
        put_record_frame(&mut bytes, key(1), b"a");
        put_frame(&mut bytes, 0x7E, b"future frame kind");
        put_record_frame(&mut bytes, key(2), b"b");
        let scan = scan_bytes(&bytes).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(!scan.truncated);
        assert_eq!(scan.frames, 3);
        assert_eq!(scan.record_frames, 2);
    }

    #[test]
    fn index_round_trips() {
        let entries = vec![
            IndexEntry {
                offset: HEADER_LEN,
                records: 256,
            },
            IndexEntry {
                offset: HEADER_LEN + 900,
                records: 44,
            },
        ];
        let mut out = Vec::new();
        put_index_and_trailer(&mut out, &entries);
        let (tag, body, _) = read_frame_at(&out, 0).unwrap();
        assert_eq!(tag, TAG_INDEX);
        let summary = parse_index_body(body).unwrap();
        assert_eq!(summary.records, 300);
        assert_eq!(summary.entries, entries);
    }

    #[test]
    fn writer_seals_and_index_reads_back() {
        let dir = std::env::temp_dir().join(format!("afp-store-frame-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sealed.afps");
        let mut w = StoreWriter::create(&path, 9).unwrap();
        for i in 0..600u64 {
            w.append(key(i), format!("payload {i}").as_bytes()).unwrap();
        }
        w.finish_sealed().unwrap();

        let mut file = File::open(&path).unwrap();
        let index = read_index(&mut file).unwrap().expect("sealed index");
        assert_eq!(index.records, 600);
        assert_eq!(index.entries.len(), 3); // 256 + 256 + 88

        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_bytes(&bytes).unwrap();
        assert!(scan.header.sealed());
        assert_eq!(scan.header.record_version, 9);
        assert_eq!(scan.records.len(), 600);
        assert!(!scan.truncated);

        let info = inspect(&path).unwrap();
        assert!(info.sealed);
        assert_eq!(info.records, 600);
        assert_eq!(info.record_version, 9);

        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn unsealed_file_has_no_index() {
        let dir = std::env::temp_dir().join(format!("afp-store-frame2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unsealed.afps");
        let mut w = StoreWriter::create(&path, 1).unwrap();
        w.append(key(1), b"x").unwrap();
        w.finish().unwrap();
        let mut file = File::open(&path).unwrap();
        assert_eq!(read_index(&mut file).unwrap(), None);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn atomic_writer_preserves_destination_until_finish() {
        let dir = std::env::temp_dir().join(format!("afp-store-frame3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.afps");

        // Seal a first generation at the destination.
        let mut w = StoreWriter::create_atomic(&path, 3).unwrap();
        w.append(key(1), b"gen1").unwrap();
        w.finish_sealed().unwrap();
        let gen1 = std::fs::read(&path).unwrap();

        // A writer dropped mid-rewrite (simulated crash) must leave the
        // previous generation byte-identical, with only the temp sibling
        // as debris.
        let mut crashed = StoreWriter::create_atomic(&path, 3).unwrap();
        for i in 0..600u64 {
            crashed.append(key(i), b"doomed").unwrap();
        }
        drop(crashed);
        assert_eq!(std::fs::read(&path).unwrap(), gen1);
        let tmp = dir.join("corpus.afps.tmp");
        assert!(tmp.exists(), "temp sibling holds the abandoned write");

        // A completed rewrite replaces the destination and removes the
        // temp sibling.
        let mut w = StoreWriter::create_atomic(&path, 3).unwrap();
        w.append(key(2), b"gen2").unwrap();
        w.finish_sealed().unwrap();
        assert!(!tmp.exists());
        let info = inspect(&path).unwrap();
        assert!(info.sealed);
        assert_eq!(info.records, 1);
        let scan = scan_bytes(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(scan.records[0].payload, b"gen2");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

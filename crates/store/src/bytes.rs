//! Primitive wire encodings: LEB128 varints, zigzag mapping and a
//! bounds-checked byte cursor.
//!
//! Everything in the store file format above the frame layer is built
//! from three primitives — little-endian fixed words, unsigned LEB128
//! varints, and zigzag-mapped signed varints — so the whole format can be
//! decoded with [`ByteReader`] and no `unsafe`.

/// Append `v` as an unsigned LEB128 varint (1–10 bytes).
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Append `v` as a zigzag-mapped signed varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

/// Zigzag-map a signed value so small magnitudes stay short varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A forward-only, bounds-checked cursor over a byte slice. Every reader
/// of the store format decodes through this type; all methods return
/// `None` instead of panicking on truncated input.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset from the start of the slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Consume `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    /// Consume a little-endian `u16`.
    pub fn u16_le(&mut self) -> Option<u16> {
        self.bytes(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    /// Consume a little-endian `u32`.
    pub fn u32_le(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consume a little-endian `u64`.
    pub fn u64_le(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Consume a little-endian `f64` (raw IEEE-754 bits; lossless).
    pub fn f64_le(&mut self) -> Option<f64> {
        self.u64_le().map(f64::from_bits)
    }

    /// Consume an unsigned LEB128 varint (rejects encodings longer than
    /// 10 bytes or overflowing 64 bits).
    pub fn uvarint(&mut self) -> Option<u64> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let byte = self.u8()?;
            let bits = (byte & 0x7F) as u64;
            if shift == 9 && byte > 1 {
                return None; // overflow past 64 bits
            }
            v |= bits << (shift * 7);
            if byte & 0x80 == 0 {
                return Some(v);
            }
        }
        None
    }

    /// Consume a zigzag-mapped signed varint.
    pub fn ivarint(&mut self) -> Option<i64> {
        self.uvarint().map(unzigzag)
    }
}

/// Append a raw little-endian `f64` (lossless round-trip of all bit
/// patterns, including NaN payloads and signed zero).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.uvarint(), Some(v), "value {v}");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn ivarint_round_trips_signs() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.ivarint(), Some(v), "value {v}");
        }
    }

    #[test]
    fn truncated_reads_return_none() {
        let mut r = ByteReader::new(&[0x80]);
        assert_eq!(r.uvarint(), None);
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u32_le(), None);
        assert_eq!(r.remaining(), 3, "failed read consumes nothing visible");
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0xFFu8; 11];
        assert_eq!(ByteReader::new(&buf).uvarint(), None);
    }

    #[test]
    fn f64_round_trips_special_values() {
        for v in [0.0f64, -0.0, 1.458, f64::INFINITY, f64::NAN] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let got = ByteReader::new(&buf).f64_le().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }
}

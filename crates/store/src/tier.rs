//! `StoreTier` — the binary disk tier, a drop-in sibling of
//! [`afp_runtime::DiskTier`].
//!
//! Same contract as the CSV tier: open loads every recoverable entry,
//! `append` persists-and-flushes each new entry so a crash never loses
//! completed work, and damage degrades gracefully (a torn tail frame is
//! dropped like a malformed CSV row). On top of that the binary tier
//! compacts append-mode record frames into compressed block frames once
//! enough accumulate, and it can transparently migrate a legacy CSV file
//! the first time it opens a directory.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use afp_runtime::{CsvRecord, DiskTier, Key128};

use crate::bytes::ByteReader;
use crate::frame::{put_record_frame, scan_bytes, Header, StoreWriter, FORMAT_VERSION};

/// A value that can round-trip through the binary store tier.
///
/// The symmetric requirement to [`afp_runtime::CsvRecord`]: `decode`
/// after `encode` must reproduce the value exactly (bit-exact for float
/// fields — the flow's golden tests compare reports across tiers).
pub trait BinRecord: Sized {
    /// Bumped whenever the payload layout changes; files carrying another
    /// version are discarded rather than misparsed (same policy as the
    /// CSV tier's versioned header).
    const VERSION: u32;
    /// Append the payload encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one payload; `None` on malformed input. Must consume the
    /// payload exactly.
    fn decode(r: &mut ByteReader<'_>) -> Option<Self>;
}

/// Compact once this many single-record append frames accumulate: the
/// file is rewritten with block compression, trading one rewrite for a
/// ~3-4x smaller file and faster future opens.
pub const COMPACT_AT: u64 = 64;

/// The append-only binary disk tier. API mirrors [`DiskTier`]:
/// [`StoreTier::open`], [`StoreTier::take_loaded`], [`StoreTier::append`].
#[derive(Debug)]
pub struct StoreTier<V> {
    path: PathBuf,
    file: Mutex<File>,
    loaded: Vec<(Key128, V)>,
    write_errors: AtomicU64,
    last_error: Mutex<Option<String>>,
    warned: AtomicBool,
}

impl<V: BinRecord> StoreTier<V> {
    /// Open (or create) the store file at `dir/name`, loading every
    /// recoverable entry. A corrupt, stale-versioned, or torn file is
    /// repaired or restarted — only unwritable locations error.
    pub fn open(dir: &Path, name: &str) -> io::Result<StoreTier<V>> {
        fs::create_dir_all(dir)?;
        let path = dir.join(name);
        let mut loaded: Vec<(Key128, V)> = Vec::new();

        let scan = match fs::read(&path) {
            Ok(bytes) => scan_bytes(&bytes).filter(|s| {
                s.header.format_version == FORMAT_VERSION && s.header.record_version == V::VERSION
            }),
            Err(_) => None,
        };

        match scan {
            None => {
                // Missing file, foreign file, or stale version: start
                // fresh, exactly like the CSV tier's truncate-on-mismatch.
                let mut file = File::create(&path)?;
                file.write_all(
                    &Header {
                        format_version: FORMAT_VERSION,
                        flags: 0,
                        record_version: V::VERSION,
                    }
                    .to_bytes(),
                )?;
                file.flush()?;
            }
            Some(scan) => {
                // A key re-appended before the compaction threshold leaves
                // several live frames; keep first-seen positions but let
                // later frames overwrite earlier values, so the load is
                // last-write-wins no matter how appends interleaved.
                let mut first_seen: HashMap<Key128, usize> = HashMap::new();
                let mut duplicates = false;
                for raw in &scan.records {
                    let mut r = ByteReader::new(&raw.payload);
                    if let Some(v) = V::decode(&mut r) {
                        if r.is_empty() {
                            match first_seen.entry(raw.key) {
                                Entry::Occupied(e) => {
                                    loaded[*e.get()].1 = v;
                                    duplicates = true;
                                }
                                Entry::Vacant(e) => {
                                    e.insert(loaded.len());
                                    loaded.push((raw.key, v));
                                }
                            }
                        }
                    }
                }
                // Rewrite when the tail is torn (drop it), the file is
                // sealed (appends must go after the data frames, not the
                // index), duplicate frames shadow stale values, or enough
                // loose record frames accumulated to be worth compacting
                // into compressed blocks.
                if scan.truncated
                    || scan.header.sealed()
                    || duplicates
                    || scan.record_frames >= COMPACT_AT
                {
                    Self::rewrite(&path, &loaded)?;
                }
            }
        }

        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(StoreTier {
            path,
            file: Mutex::new(file),
            loaded,
            write_errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
            warned: AtomicBool::new(false),
        })
    }

    /// Rewrite the file from `entries` as compressed block frames, via a
    /// temp file and atomic rename so a crash leaves the old file intact.
    fn rewrite(path: &Path, entries: &[(Key128, V)]) -> io::Result<()> {
        let unique: HashSet<Key128> = entries.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            unique.len(),
            entries.len(),
            "rewrite input must be deduplicated to one live value per key"
        );
        let mut writer = StoreWriter::create_atomic(path, V::VERSION)?;
        let mut payload = Vec::new();
        for (key, value) in entries {
            payload.clear();
            value.encode(&mut payload);
            writer.append(*key, &payload)?;
        }
        writer.finish()
    }

    /// Entries recovered at open time; drain them into the memory tier.
    pub fn take_loaded(&mut self) -> Vec<(Key128, V)> {
        std::mem::take(&mut self.loaded)
    }

    /// Append one entry as a single record frame and flush.
    ///
    /// Like the CSV tier, a failed write must not fail a run whose value
    /// is already in memory — but unlike the old CSV tier it is *counted*
    /// (see [`StoreTier::write_errors`]) and warned about once, so silent
    /// cache loss shows up in the run report instead of nowhere.
    pub fn append(&self, key: Key128, value: &V) {
        let mut payload = Vec::new();
        value.encode(&mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 32);
        put_record_frame(&mut frame, key, &payload);
        let result = {
            let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
            file.write_all(&frame).and_then(|()| file.flush())
        };
        if let Err(err) = result {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            *self
                .last_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(err.to_string());
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: failed to persist cache entry to {}: {err} \
                     (run continues; see cache.write_errors in the report)",
                    self.path.display()
                );
            }
        }
    }

    /// Number of entries whose disk append failed since open.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// The most recent append failure message, if any — the warn-once
    /// stderr path only shows the *first* error, so reports surface the
    /// last one here.
    pub fn last_write_error(&self) -> Option<String> {
        self.last_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl<V: BinRecord + CsvRecord> StoreTier<V> {
    /// Open the binary store at `dir/name`, first migrating a legacy CSV
    /// file (`csv_name`) if one exists and no store file does. The CSV is
    /// renamed aside after migration, so the conversion happens exactly
    /// once.
    pub fn open_migrating(dir: &Path, name: &str, csv_name: &str) -> io::Result<StoreTier<V>> {
        migrate_csv::<V>(dir, name, csv_name)?;
        Self::open(dir, name)
    }
}

/// Outcome of [`migrate_csv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsvMigration {
    /// Entries carried over into the store file.
    pub migrated: usize,
    /// Whether a conversion actually ran (false when the store already
    /// exists or there is no CSV to migrate — both make the call a no-op,
    /// which is what lets `afp cache migrate` be idempotent).
    pub performed: bool,
}

/// One-shot CSV → binary-store migration of `dir/csv_name` into
/// `dir/name`. No-op (idempotent) when the store file already exists or
/// the CSV is absent. The migrated CSV is renamed to `<csv_name>.migrated`
/// rather than deleted.
pub fn migrate_csv<V: BinRecord + CsvRecord>(
    dir: &Path,
    name: &str,
    csv_name: &str,
) -> io::Result<CsvMigration> {
    let store_path = dir.join(name);
    let csv_path = dir.join(csv_name);
    if store_path.exists() || !csv_path.exists() {
        return Ok(CsvMigration {
            migrated: 0,
            performed: false,
        });
    }
    let entries = DiskTier::<V>::read_entries(&csv_path)?;
    let mut writer = StoreWriter::create_atomic(&store_path, <V as BinRecord>::VERSION)?;
    let mut payload = Vec::new();
    for (key, value) in &entries {
        payload.clear();
        value.encode(&mut payload);
        writer.append(*key, &payload)?;
    }
    writer.finish()?;
    let aside = csv_path.with_file_name(format!("{csv_name}.migrated"));
    fs::rename(&csv_path, aside)?;
    Ok(CsvMigration {
        migrated: entries.len(),
        performed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Rec {
        area: f64,
        luts: u64,
    }

    impl BinRecord for Rec {
        const VERSION: u32 = 3;
        fn encode(&self, out: &mut Vec<u8>) {
            crate::bytes::put_f64(out, self.area);
            crate::bytes::put_uvarint(out, self.luts);
        }
        fn decode(r: &mut ByteReader<'_>) -> Option<Rec> {
            Some(Rec {
                area: r.f64_le()?,
                luts: r.uvarint()?,
            })
        }
    }

    impl CsvRecord for Rec {
        const VERSION: u32 = 3;
        fn columns() -> Vec<&'static str> {
            vec!["area", "luts"]
        }
        fn to_fields(&self) -> Vec<String> {
            vec![format!("{:?}", self.area), self.luts.to_string()]
        }
        fn from_fields(fields: &[&str]) -> Option<Rec> {
            let [area, luts] = fields else { return None };
            Some(Rec {
                area: area.parse().ok()?,
                luts: luts.parse().ok()?,
            })
        }
    }

    fn key(n: u64) -> Key128 {
        Key128 {
            hi: n.wrapping_mul(0x243F_6A88_85A3_08D3),
            lo: n ^ 0xDEAD_BEEF,
        }
    }

    fn rec(n: u64) -> Rec {
        Rec {
            area: n as f64 * 1.25 + 0.1,
            luts: n * 3,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("afp-store-tier-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tier_round_trip() {
        let dir = temp_dir("roundtrip");
        {
            let tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
            tier.append(key(1), &rec(1));
            tier.append(key(2), &rec(2));
            assert_eq!(tier.write_errors(), 0);
        }
        let mut tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
        let loaded = tier.take_loaded();
        assert_eq!(loaded, vec![(key(1), rec(1)), (key(2), rec(2))]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_version_restarts_fresh() {
        let dir = temp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        let mut w = StoreWriter::create(&dir.join("c.afps"), 999).unwrap();
        let mut payload = Vec::new();
        rec(1).encode(&mut payload);
        w.append(key(1), &payload).unwrap();
        w.finish().unwrap();

        let mut tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
        assert!(
            tier.take_loaded().is_empty(),
            "stale version must be dropped"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_repaired_on_open() {
        let dir = temp_dir("torn");
        {
            let tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
            tier.append(key(1), &rec(1));
            tier.append(key(2), &rec(2));
        }
        let path = dir.join("c.afps");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap(); // tear the tail

        let mut tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
        assert_eq!(tier.take_loaded(), vec![(key(1), rec(1))]);
        // The repair dropped the torn frame; appends keep working and a
        // third open sees a clean two-entry file.
        tier.append(key(3), &rec(3));
        let mut tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
        assert_eq!(tier.take_loaded(), vec![(key(1), rec(1)), (key(3), rec(3))]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_entries_and_shrinks_file() {
        let dir = temp_dir("compact");
        let n = COMPACT_AT + 10;
        {
            let tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
            for i in 0..n {
                tier.append(key(i), &rec(i));
            }
        }
        let before = fs::metadata(dir.join("c.afps")).unwrap().len();
        let mut tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
        let loaded = tier.take_loaded();
        assert_eq!(loaded.len(), n as usize);
        for (i, (k, v)) in loaded.iter().enumerate() {
            assert_eq!((k, v), (&key(i as u64), &rec(i as u64)));
        }
        let after = fs::metadata(dir.join("c.afps")).unwrap().len();
        assert!(
            after < before,
            "compaction should shrink the file: {before} -> {after}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_migration_is_one_shot_and_lossless() {
        let dir = temp_dir("migrate");
        {
            let csv: DiskTier<Rec> = DiskTier::open(&dir, "c.csv").unwrap();
            for i in 0..20 {
                csv.append(key(i), &rec(i));
            }
        }
        let outcome = migrate_csv::<Rec>(&dir, "c.afps", "c.csv").unwrap();
        assert_eq!(
            outcome,
            CsvMigration {
                migrated: 20,
                performed: true
            }
        );
        assert!(!dir.join("c.csv").exists(), "CSV renamed aside");
        assert!(dir.join("c.csv.migrated").exists());

        // Idempotent: a second call is a no-op.
        let again = migrate_csv::<Rec>(&dir, "c.afps", "c.csv").unwrap();
        assert!(!again.performed);

        let mut tier: StoreTier<Rec> = StoreTier::open_migrating(&dir, "c.afps", "c.csv").unwrap();
        let loaded = tier.take_loaded();
        assert_eq!(loaded.len(), 20);
        for (i, (k, v)) in loaded.iter().enumerate() {
            assert_eq!((k, v), (&key(i as u64), &rec(i as u64)));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_migrating_without_csv_starts_empty() {
        let dir = temp_dir("migrate-none");
        let mut tier: StoreTier<Rec> = StoreTier::open_migrating(&dir, "c.afps", "c.csv").unwrap();
        assert!(tier.take_loaded().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_errors_are_counted_and_run_continues() {
        // /dev/full fails every write with ENOSPC — the canonical way to
        // exercise the error path deterministically. Skip quietly on
        // platforms without it.
        let Ok(file) = OpenOptions::new().write(true).open("/dev/full") else {
            return;
        };
        let tier = StoreTier::<Rec> {
            path: PathBuf::from("/dev/full"),
            file: Mutex::new(file),
            loaded: Vec::new(),
            write_errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
            warned: AtomicBool::new(false),
        };
        assert_eq!(tier.last_write_error(), None);
        tier.append(key(1), &rec(1));
        tier.append(key(2), &rec(2));
        assert_eq!(tier.write_errors(), 2);
        let last = tier.last_write_error().expect("error message captured");
        assert!(!last.is_empty());
    }

    #[test]
    fn duplicate_appends_load_last_write_wins_and_compact() {
        let dir = temp_dir("dup");
        {
            let tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
            tier.append(key(1), &rec(1));
            tier.append(key(2), &rec(2));
            tier.append(key(1), &rec(7)); // re-characterized: newer value
        }
        let mut tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
        let loaded = tier.take_loaded();
        assert_eq!(
            loaded,
            vec![(key(1), rec(7)), (key(2), rec(2))],
            "exactly the newer value survives, at the first-seen position"
        );
        // The duplicate forced a compaction: a reopen sees one live frame
        // per key and loads the same values.
        let mut tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
        assert_eq!(tier.take_loaded(), vec![(key(1), rec(7)), (key(2), rec(2))]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_resolution_is_order_independent() {
        // Whatever the interleaving of appends, the per-key winner is the
        // latest append of that key.
        let dir = temp_dir("dup-order");
        {
            let tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
            tier.append(key(2), &rec(20));
            tier.append(key(1), &rec(10));
            tier.append(key(2), &rec(21));
            tier.append(key(3), &rec(30));
            tier.append(key(2), &rec(22));
            tier.append(key(1), &rec(11));
        }
        let mut tier: StoreTier<Rec> = StoreTier::open(&dir, "c.afps").unwrap();
        assert_eq!(
            tier.take_loaded(),
            vec![(key(2), rec(22)), (key(1), rec(11)), (key(3), rec(30))]
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Lazy, frame-at-a-time store reader.
//!
//! [`FrameStream`] reads one frame per `next()` refill instead of slurping
//! the whole file, so library-scale corpora are never fully resident:
//! peak memory is one frame (a block of [`crate::frame::BLOCK_RECORDS`]
//! records) regardless of file size. A torn or corrupt tail frame ends
//! the stream (recoverable via [`FrameStream::truncated`]) instead of
//! erroring, mirroring the CSV tier's skip-malformed-rows policy.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

use crate::crc::Crc32;
use crate::frame::{decode_frame_records, Header, RawRecord, FORMAT_VERSION, TAG_INDEX};

/// Refuse to allocate for frames claiming bodies beyond this size; real
/// frames are a few hundred KB at most, so anything larger is corruption.
const MAX_FRAME_BODY: usize = 1 << 30;

/// An iterator over the records of a store file, decoding lazily.
#[derive(Debug)]
pub struct FrameStream {
    reader: BufReader<File>,
    header: Header,
    buffered: VecDeque<RawRecord>,
    done: bool,
    truncated: bool,
}

impl FrameStream {
    /// Open `path` and validate its header. Fails with
    /// [`io::ErrorKind::InvalidData`] when the file is not a store file or
    /// uses an unknown container format version.
    pub fn open(path: &Path) -> io::Result<FrameStream> {
        let file = File::open(path)?;
        let mut reader = BufReader::new(file);
        let mut hdr = [0u8; 16];
        reader
            .read_exact(&mut hdr)
            .map_err(|_| bad_data("store file shorter than its header"))?;
        let header = Header::parse(&hdr).ok_or_else(|| bad_data("not a store file (bad magic)"))?;
        if header.format_version != FORMAT_VERSION {
            return Err(bad_data("unsupported store format version"));
        }
        Ok(FrameStream {
            reader,
            header,
            buffered: VecDeque::new(),
            done: false,
            truncated: false,
        })
    }

    /// The parsed file header.
    pub fn header(&self) -> Header {
        self.header
    }

    /// Whether the stream ended at a torn or corrupt frame (the valid
    /// prefix was still yielded).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Read and decode the next frame into the buffer. Returns `false`
    /// when the stream is finished.
    fn refill(&mut self) -> bool {
        let mut tag = [0u8; 1];
        match self.reader.read(&mut tag) {
            Ok(0) => {
                self.done = true; // clean EOF
                return false;
            }
            Ok(_) => {}
            Err(_) => return self.stop_torn(),
        }
        let mut len = [0u8; 4];
        if self.reader.read_exact(&mut len).is_err() {
            return self.stop_torn();
        }
        let body_len = u32::from_le_bytes(len) as usize;
        if body_len > MAX_FRAME_BODY {
            return self.stop_torn();
        }
        let mut body = vec![0u8; body_len];
        if self.reader.read_exact(&mut body).is_err() {
            return self.stop_torn();
        }
        let mut crc_bytes = [0u8; 4];
        if self.reader.read_exact(&mut crc_bytes).is_err() {
            return self.stop_torn();
        }
        let mut crc = Crc32::new();
        crc.update(&tag);
        crc.update(&body);
        if crc.finish() != u32::from_le_bytes(crc_bytes) {
            return self.stop_torn();
        }
        if tag[0] == TAG_INDEX {
            self.done = true; // sealed footer: no data frames follow
            return false;
        }
        let mut sink = Vec::new();
        if decode_frame_records(tag[0], &body, &mut sink).is_none() {
            return self.stop_torn();
        }
        self.buffered.extend(sink);
        true
    }

    fn stop_torn(&mut self) -> bool {
        self.done = true;
        self.truncated = true;
        false
    }
}

impl Iterator for FrameStream {
    type Item = RawRecord;

    fn next(&mut self) -> Option<RawRecord> {
        loop {
            if let Some(rec) = self.buffered.pop_front() {
                return Some(rec);
            }
            if self.done {
                return None;
            }
            // A refill may legitimately buffer nothing (an unknown-tag
            // frame is skipped); loop until records appear or the stream
            // ends.
            self.refill();
        }
    }
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{put_record_frame, StoreWriter, FLAG_SEALED};
    use afp_runtime::Key128;
    use std::io::Write;

    fn key(i: u64) -> Key128 {
        Key128 { hi: i, lo: !i }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "afp-store-stream-{tag}-{}.afps",
            std::process::id()
        ))
    }

    #[test]
    fn streams_sealed_file_lazily() {
        let path = temp_path("sealed");
        let mut w = StoreWriter::create(&path, 5).unwrap();
        for i in 0..700u64 {
            w.append(key(i), format!("rec {i}").as_bytes()).unwrap();
        }
        w.finish_sealed().unwrap();

        let mut stream = FrameStream::open(&path).unwrap();
        assert_eq!(stream.header().record_version, 5);
        assert!(stream.header().flags & FLAG_SEALED != 0);
        let first = stream.next().unwrap();
        assert_eq!(first.key, key(0));
        assert!(
            stream.buffered.len() < 700,
            "must not have decoded the whole file after one item"
        );
        let rest: Vec<RawRecord> = stream.by_ref().collect();
        assert_eq!(rest.len(), 699);
        assert!(!stream.truncated());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_ends_stream_with_flag() {
        let path = temp_path("torn");
        let mut bytes = crate::frame::Header {
            format_version: FORMAT_VERSION,
            flags: 0,
            record_version: 1,
        }
        .to_bytes()
        .to_vec();
        put_record_frame(&mut bytes, key(1), b"whole");
        put_record_frame(&mut bytes, key(2), b"torn-away");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(&bytes[..bytes.len() - 6]).unwrap();
        drop(f);

        let mut stream = FrameStream::open(&path).unwrap();
        let got: Vec<RawRecord> = stream.by_ref().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"whole");
        assert!(stream.truncated());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_non_store_files() {
        let path = temp_path("notastore");
        std::fs::write(&path, b"key,v1,area\nabc,1.0\n").unwrap();
        let err = FrameStream::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}

//! Varint-packed binary netlist encoding.
//!
//! Gates are stored in topological order as a kind byte plus operand
//! *back-deltas* (`gate_index - operand_index`, always ≥ 1). Deltas are
//! small for the local wiring typical of arithmetic circuits, so most
//! operands take one varint byte, and the delta stream is highly
//! repetitive — exactly what the block-level LZ codec feeds on. Primary
//! inputs are implied by the input count and never stored per-gate.
//!
//! ```text
//! netlist := name_len uvarint | name bytes | num_inputs uvarint
//!          | num_gates uvarint | gate* | num_outputs uvarint | out_delta*
//! gate    := kind u8 | (const: value u8 | logic: delta uvarint per operand)
//! out_delta := num_gates - output_index   (uvarint, ≥ 1)
//! ```
//!
//! The kind codes below are part of the on-disk format and must never be
//! renumbered; new gate kinds get fresh codes.

use afp_netlist::{Gate, Netlist};

use crate::bytes::{put_uvarint, ByteReader};

// Stable on-disk gate kind codes (NOT the GateKind discriminant, which is
// free to be reordered in memory).
const K_CONST: u8 = 1;
const K_BUF: u8 = 2;
const K_NOT: u8 = 3;
const K_AND: u8 = 4;
const K_OR: u8 = 5;
const K_XOR: u8 = 6;
const K_NAND: u8 = 7;
const K_NOR: u8 = 8;
const K_XNOR: u8 = 9;
const K_MUX: u8 = 10;
const K_MAJ: u8 = 11;

/// Encode `netlist` into `out`.
///
/// The netlist must satisfy [`Netlist::validate`]; encodings of invalid
/// netlists (e.g. an `Input` gate after logic) are rejected by
/// [`decode_netlist`] rather than silently mangled.
pub fn encode_netlist(netlist: &Netlist, out: &mut Vec<u8>) {
    let name = netlist.name().as_bytes();
    put_uvarint(out, name.len() as u64);
    out.extend_from_slice(name);
    put_uvarint(out, netlist.num_inputs() as u64);
    put_uvarint(out, netlist.len() as u64);
    for (i, gate) in netlist
        .gates()
        .iter()
        .enumerate()
        .skip(netlist.num_inputs())
    {
        match *gate {
            // A misplaced Input is invalid; code 0 makes decode fail.
            Gate::Input(_) => out.push(0),
            Gate::Const(v) => {
                out.push(K_CONST);
                out.push(v as u8);
            }
            _ => {
                out.push(kind_code(gate));
                for op in gate.operands() {
                    put_uvarint(out, (i - op.index()) as u64);
                }
            }
        }
    }
    put_uvarint(out, netlist.num_outputs() as u64);
    for o in netlist.outputs() {
        put_uvarint(out, (netlist.len() - o.index()) as u64);
    }
}

fn kind_code(gate: &Gate) -> u8 {
    match gate {
        Gate::Input(_) => 0,
        Gate::Const(_) => K_CONST,
        Gate::Buf(_) => K_BUF,
        Gate::Not(_) => K_NOT,
        Gate::And(..) => K_AND,
        Gate::Or(..) => K_OR,
        Gate::Xor(..) => K_XOR,
        Gate::Nand(..) => K_NAND,
        Gate::Nor(..) => K_NOR,
        Gate::Xnor(..) => K_XNOR,
        Gate::Mux(..) => K_MUX,
        Gate::Maj(..) => K_MAJ,
    }
}

/// Decode a netlist previously written by [`encode_netlist`]. Returns
/// `None` on any malformed input; a successful decode is structurally
/// identical to the original (exact `PartialEq`, name included) and has
/// been re-validated.
pub fn decode_netlist(r: &mut ByteReader<'_>) -> Option<Netlist> {
    let name_len = r.uvarint()? as usize;
    let name = std::str::from_utf8(r.bytes(name_len)?).ok()?;
    let num_inputs = r.uvarint()? as usize;
    let num_gates = r.uvarint()? as usize;
    if num_inputs > num_gates || num_inputs > u16::MAX as usize {
        return None;
    }
    let mut netlist = Netlist::new(name);
    netlist.add_inputs(num_inputs);
    for i in num_inputs..num_gates {
        let kind = r.u8()?;
        if kind == K_CONST {
            let v = r.u8()?;
            if v > 1 {
                return None;
            }
            netlist.constant(v == 1);
            continue;
        }
        let arity = match kind {
            K_BUF | K_NOT => 1,
            K_AND | K_OR | K_XOR | K_NAND | K_NOR | K_XNOR => 2,
            K_MUX | K_MAJ => 3,
            _ => return None,
        };
        let mut ops = [afp_netlist::NetId::from_index(0); 3];
        for op in ops.iter_mut().take(arity) {
            let delta = r.uvarint()? as usize;
            if delta == 0 || delta > i {
                return None;
            }
            *op = afp_netlist::NetId::from_index(i - delta);
        }
        let [a, b, c] = ops;
        match kind {
            K_BUF => netlist.buf(a),
            K_NOT => netlist.not(a),
            K_AND => netlist.and(a, b),
            K_OR => netlist.or(a, b),
            K_XOR => netlist.xor(a, b),
            K_NAND => netlist.nand(a, b),
            K_NOR => netlist.nor(a, b),
            K_XNOR => netlist.xnor(a, b),
            K_MUX => netlist.mux(a, b, c),
            K_MAJ => netlist.maj(a, b, c),
            _ => return None,
        };
    }
    let num_outputs = r.uvarint()? as usize;
    let mut outputs = Vec::with_capacity(num_outputs.min(1 << 16));
    for _ in 0..num_outputs {
        let delta = r.uvarint()? as usize;
        if delta == 0 || delta > num_gates {
            return None;
        }
        outputs.push(afp_netlist::NetId::from_index(num_gates - delta));
    }
    netlist.set_outputs(outputs);
    netlist.validate().ok()?;
    Some(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut n = Netlist::new("fa");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let axb = n.xor(a, b);
        let s = n.xor(axb, c);
        let co = n.maj(a, b, c);
        n.set_outputs(vec![s, co]);
        n
    }

    fn round_trip(n: &Netlist) -> Netlist {
        let mut buf = Vec::new();
        encode_netlist(n, &mut buf);
        let mut r = ByteReader::new(&buf);
        let decoded = decode_netlist(&mut r).expect("decode");
        assert!(r.is_empty(), "trailing bytes after decode");
        decoded
    }

    #[test]
    fn full_adder_round_trips_exactly() {
        let n = full_adder();
        assert_eq!(round_trip(&n), n);
    }

    #[test]
    fn all_gate_kinds_round_trip() {
        let mut n = Netlist::new("zoo");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let k0 = n.constant(false);
        let k1 = n.constant(true);
        let g1 = n.buf(a);
        let g2 = n.not(b);
        let g3 = n.and(a, b);
        let g4 = n.or(g1, g2);
        let g5 = n.xor(g3, c);
        let g6 = n.nand(g4, g5);
        let g7 = n.nor(k0, g6);
        let g8 = n.xnor(k1, g7);
        let g9 = n.mux(c, g8, g3);
        let g10 = n.maj(g9, g8, a);
        n.set_outputs(vec![g10, g9, k1]);
        assert_eq!(n.validate(), Ok(()));
        assert_eq!(round_trip(&n), n);
    }

    #[test]
    fn empty_and_wire_only_netlists_round_trip() {
        let n = Netlist::new("empty");
        assert_eq!(round_trip(&n), n);

        let mut n = Netlist::new("wires");
        let a = n.add_input();
        let b = n.add_input();
        n.set_outputs(vec![b, a]);
        assert_eq!(round_trip(&n), n);
    }

    #[test]
    fn encoding_is_compact() {
        let n = full_adder();
        let mut buf = Vec::new();
        encode_netlist(&n, &mut buf);
        // name(1+2) + inputs(1) + gates(1) + 3 gates of ≤4 bytes + outputs(3)
        assert!(buf.len() <= 20, "full adder took {} bytes", buf.len());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let n = full_adder();
        let mut buf = Vec::new();
        encode_netlist(&n, &mut buf);
        // Truncations must fail cleanly at every cut point.
        for cut in 0..buf.len() {
            assert!(
                decode_netlist(&mut ByteReader::new(&buf[..cut])).is_none(),
                "truncation at {cut} decoded"
            );
        }
        // A forward/underflowing operand delta must be rejected.
        let mut bad = buf.clone();
        // gate stream starts after name(3 bytes)+inputs(1)+gates(1): kind
        // byte then first delta — zero it out.
        bad[6] = 0;
        assert!(decode_netlist(&mut ByteReader::new(&bad)).is_none());
    }
}

//! Built-in byte-oriented LZ codec for block frames.
//!
//! The block layer of the store format carries a codec id per frame
//! (zstd-style framing with reserved codec ids), but this workspace is
//! dependency-free, so the only compressed codec shipped today is this
//! safe-Rust LZ77 variant with an LZ4-block-style token stream:
//!
//! ```text
//! token: 1 byte  — high nibble = literal run length, low nibble = match
//!                  length - 4; a nibble of 15 is extended by 255-valued
//!                  continuation bytes plus a terminator byte
//! [extended literal length bytes]
//! literals
//! offset: u16 LE — back-reference distance, 1..=65535 (0 is invalid)
//! [extended match length bytes]
//! ```
//!
//! The final sequence carries literals only (match length nibble 0 and no
//! offset). Matches may overlap their own output (RLE-style), which the
//! decompressor handles with a byte-at-a-time copy. The compressor is a
//! greedy single-probe hash-chain matcher: fast, deterministic, and good
//! enough that highly regular circuit payloads shrink 2-4x while
//! incompressible payloads cost two bytes of framing (the block layer
//! falls back to raw storage when compression does not pay).

const MIN_MATCH: usize = 4;
const WINDOW: usize = 65_535;
const HASH_BITS: u32 = 13;
const HASH_LEN: usize = 1 << HASH_BITS;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

fn put_len(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

/// Compress `src`. The output is self-delimiting only together with the
/// uncompressed length, which the block layer stores alongside it.
pub fn compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    // Single-entry hash table of candidate positions, stored +1 so that 0
    // means "empty".
    let mut table = vec![0u32; HASH_LEN];
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    while pos + MIN_MATCH <= src.len() {
        let h = hash4(&src[pos..]);
        let candidate = table[h] as usize;
        table[h] = (pos + 1) as u32;

        let matched = if candidate > 0 {
            let cand = candidate - 1;
            // `cand` always precedes `pos` (the table entry was written on
            // an earlier iteration), so the distance is at least 1.
            let dist = pos - cand;
            if dist <= WINDOW && src[cand..cand + MIN_MATCH] == src[pos..pos + MIN_MATCH] {
                let mut len = MIN_MATCH;
                while pos + len < src.len() && src[cand + len] == src[pos + len] {
                    len += 1;
                }
                Some((dist, len))
            } else {
                None
            }
        } else {
            None
        };

        match matched {
            Some((dist, len)) => {
                emit_sequence(&mut out, &src[literal_start..pos], Some((dist, len)));
                // Seed the table sparsely inside the match so later data can
                // still find back-references into it.
                let end = pos + len;
                let mut p = pos + 1;
                while p + MIN_MATCH <= src.len() && p < end {
                    table[hash4(&src[p..])] = (p + 1) as u32;
                    p += 2;
                }
                pos = end;
                literal_start = pos;
            }
            None => pos += 1,
        }
    }

    emit_sequence(&mut out, &src[literal_start..], None);
    out
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nibble = literals.len().min(15) as u8;
    let match_nibble = match m {
        Some((_, len)) => (len - MIN_MATCH).min(15) as u8,
        None => 0,
    };
    out.push((lit_nibble << 4) | match_nibble);
    if literals.len() >= 15 {
        put_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((dist, len)) = m {
        out.extend_from_slice(&(dist as u16).to_le_bytes());
        if len - MIN_MATCH >= 15 {
            put_len(out, len - MIN_MATCH - 15);
        }
    }
}

/// Decompress `src` into exactly `expected_len` bytes. Returns `None` on
/// any malformed input (bad offsets, truncation, or length mismatch) —
/// callers treat that the same as a CRC failure.
pub fn decompress(src: &[u8], expected_len: usize) -> Option<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    let mut pos = 0usize;

    while pos < src.len() {
        let token = src[pos];
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            loop {
                let b = *src.get(pos)? as usize;
                pos += 1;
                lit_len += b;
                if b != 255 {
                    break;
                }
            }
        }
        let lit_end = pos.checked_add(lit_len)?;
        if lit_end > src.len() {
            return None;
        }
        out.extend_from_slice(&src[pos..lit_end]);
        pos = lit_end;

        if pos == src.len() {
            // Final literal-only sequence.
            break;
        }

        let dist = u16::from_le_bytes([*src.get(pos)?, *src.get(pos + 1)?]) as usize;
        pos += 2;
        if dist == 0 || dist > out.len() {
            return None;
        }
        let mut match_len = (token & 0x0F) as usize + MIN_MATCH;
        if token & 0x0F == 15 {
            loop {
                let b = *src.get(pos)? as usize;
                pos += 1;
                match_len += b;
                if b != 255 {
                    break;
                }
            }
        }
        if out.len() + match_len > expected_len {
            return None;
        }
        // Byte-at-a-time copy: the match may overlap its own output.
        let start = out.len() - dist;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }

    if out.len() == expected_len {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed, data.len()).expect("decompress");
        assert_eq!(unpacked, data);
    }

    #[test]
    fn round_trips_empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
    }

    #[test]
    fn round_trips_repetitive_data_and_shrinks_it() {
        let data: Vec<u8> = b"netlist-frame-"
            .iter()
            .copied()
            .cycle()
            .take(4096)
            .collect();
        let packed = compress(&data);
        assert!(
            packed.len() * 4 < data.len(),
            "repetitive input should compress >4x, got {} -> {}",
            data.len(),
            packed.len()
        );
        assert_eq!(decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn round_trips_overlapping_rle_runs() {
        round_trip(&[7u8; 1000]);
        let mut data = vec![1, 2, 3];
        for _ in 0..500 {
            data.push(1);
            data.push(2);
        }
        round_trip(&data);
    }

    #[test]
    fn round_trips_incompressible_data() {
        // A deterministic pseudo-random byte stream with no 4-byte repeats
        // to speak of; the codec must still round-trip it.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn rejects_corrupt_streams() {
        let data: Vec<u8> = b"abcdabcdabcdabcd-tail".repeat(30);
        let mut packed = compress(&data);
        assert_eq!(decompress(&packed, data.len() + 1), None, "length mismatch");
        assert_eq!(
            decompress(&packed[..packed.len() - 2], data.len()),
            None,
            "truncated"
        );
        let last = packed.len() - 1;
        packed[last] ^= 0xFF;
        // A flipped byte must never panic; it may or may not decode, but if
        // it does the length check rejects a wrong-sized result.
        let _ = decompress(&packed, data.len());
    }

    #[test]
    fn rejects_bad_offsets() {
        // token: 0 literals, match len 4, offset 9 with only 0 bytes out.
        let stream = [0x00u8, 9, 0];
        assert_eq!(decompress(&stream, 4), None);
        // Offset 0 is invalid by construction.
        let stream = [0x00u8, 0, 0];
        assert_eq!(decompress(&stream, 4), None);
    }
}

//! ASIC synthesis model: standard-cell mapping, static timing analysis and
//! switching-activity power estimation.
//!
//! The ApproxFPGAs methodology needs, for every circuit in a library, the
//! "ASIC parameters" (area, delay, power) that (a) define the ASIC pareto
//! front of Fig. 1 and (b) serve as regression features for the ML models
//! ML1–ML3. This crate provides those numbers from a 45 nm-flavoured
//! generic standard-cell library: each netlist gate maps 1:1 onto a cell
//! with calibrated area/delay/energy/leakage, timing is a topological STA
//! with fanout-dependent cell delay, and dynamic power uses zero-delay
//! switching activities estimated by simulation.
//!
//! Absolute values are representative, not foundry-accurate; the paper's
//! claims only require that ASIC cost *ranks* circuits differently than
//! FPGA cost does (gates vs LUTs), which this model preserves structurally.
//!
//! # Example
//!
//! ```
//! use afp_asic::{synthesize_asic, AsicConfig};
//! use afp_circuits::multipliers::wallace_multiplier;
//!
//! let m = wallace_multiplier(8);
//! let report = synthesize_asic(m.netlist(), &AsicConfig::default());
//! assert!(report.area_um2 > 0.0);
//! assert!(report.delay_ns > 0.0);
//! assert!(report.power_mw > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fusion;

use afp_netlist::{analyze, GateKind, Netlist, SimScratch};

use fusion::FusedCell;

/// Per-cell characterization data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cell {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Intrinsic propagation delay in ps.
    pub delay_ps: f64,
    /// Additional delay per fanout load, in ps.
    pub load_ps_per_fanout: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
    /// Switching energy per output toggle in fJ.
    pub energy_fj: f64,
}

/// A standard-cell library: one [`Cell`] per logic [`GateKind`], plus
/// compound full-adder / half-adder cells used when fusion is enabled.
#[derive(Clone, Debug)]
pub struct CellLibrary {
    name: String,
    cells: [Cell; GateKind::LOGIC.len()],
    full_adder: CompoundCell,
    half_adder: CompoundCell,
}

/// A two-output compound arithmetic cell (FA or HA).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompoundCell {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Input→sum propagation delay in ps (plus per-fanout load).
    pub sum_delay_ps: f64,
    /// Input→carry propagation delay in ps (plus per-fanout load).
    pub carry_delay_ps: f64,
    /// Additional delay per fanout load, in ps.
    pub load_ps_per_fanout: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
    /// Switching energy per sum-output toggle in fJ.
    pub sum_energy_fj: f64,
    /// Switching energy per carry-output toggle in fJ.
    pub carry_energy_fj: f64,
}

impl CellLibrary {
    /// The default 45 nm-flavoured generic library.
    ///
    /// Relative cell costs follow standard-cell intuition: inverting gates
    /// (NAND/NOR) are the cheapest two-input functions, XOR/XNOR and MUX
    /// are roughly twice as large and slow, and the majority (carry) cell
    /// sits between them.
    pub fn generic_45nm() -> CellLibrary {
        let c = |area, delay, load, leak, energy| Cell {
            area_um2: area,
            delay_ps: delay,
            load_ps_per_fanout: load,
            leakage_nw: leak,
            energy_fj: energy,
        };
        // Order must match GateKind::LOGIC:
        // Buf, Not, And, Or, Xor, Nand, Nor, Xnor, Mux, Maj
        let cells = [
            c(1.06, 28.0, 5.0, 12.0, 0.8), // Buf
            c(0.53, 12.0, 4.0, 8.0, 0.5),  // Not
            c(1.33, 34.0, 6.0, 18.0, 1.2), // And
            c(1.33, 36.0, 6.0, 18.0, 1.2), // Or
            c(2.13, 55.0, 7.0, 30.0, 2.6), // Xor
            c(1.06, 22.0, 6.0, 14.0, 0.9), // Nand
            c(1.06, 24.0, 6.0, 14.0, 0.9), // Nor
            c(2.13, 57.0, 7.0, 30.0, 2.6), // Xnor
            c(2.39, 48.0, 7.0, 26.0, 2.2), // Mux
            c(2.39, 50.0, 7.0, 28.0, 2.5), // Maj
        ];
        CellLibrary {
            name: "generic45".to_string(),
            cells,
            // Compound cells: markedly cheaper than their discrete
            // decomposition (FA ~ 2xXOR+MAJ = 6.7 um2 / 5.7 fJ discrete).
            full_adder: CompoundCell {
                area_um2: 4.52,
                sum_delay_ps: 76.0,
                carry_delay_ps: 48.0,
                load_ps_per_fanout: 7.0,
                leakage_nw: 46.0,
                sum_energy_fj: 2.1,
                carry_energy_fj: 1.7,
            },
            half_adder: CompoundCell {
                area_um2: 2.66,
                sum_delay_ps: 52.0,
                carry_delay_ps: 32.0,
                load_ps_per_fanout: 6.5,
                leakage_nw: 26.0,
                sum_energy_fj: 1.6,
                carry_energy_fj: 0.9,
            },
        }
    }

    /// The compound full-adder cell.
    pub fn full_adder(&self) -> CompoundCell {
        self.full_adder
    }

    /// The compound half-adder cell.
    pub fn half_adder(&self) -> CompoundCell {
        self.half_adder
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell implementing `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is `Input` or `Const` (not cells).
    pub fn cell(&self, kind: GateKind) -> Cell {
        let idx = GateKind::LOGIC
            .iter()
            .position(|&k| k == kind)
            .expect("inputs/constants are not cells");
        self.cells[idx]
    }
}

impl Default for CellLibrary {
    fn default() -> CellLibrary {
        CellLibrary::generic_45nm()
    }
}

/// Configuration for [`synthesize_asic`].
#[derive(Clone, Debug)]
pub struct AsicConfig {
    /// Standard-cell library to map onto.
    pub library: CellLibrary,
    /// Operating clock in GHz (scales dynamic power).
    pub clock_ghz: f64,
    /// Random-stimulus passes for activity estimation (64 vectors each).
    pub activity_passes: usize,
    /// Stimulus seed.
    pub seed: u64,
    /// Fuse full-adder/half-adder patterns into compound cells
    /// (see [`fusion`]); affects cost accounting only.
    pub fuse_adders: bool,
}

impl Default for AsicConfig {
    fn default() -> AsicConfig {
        AsicConfig {
            library: CellLibrary::generic_45nm(),
            clock_ghz: 1.0,
            activity_passes: 32,
            seed: 0xA51C,
            fuse_adders: true,
        }
    }
}

/// ASIC synthesis report for one netlist.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsicReport {
    /// Total standard-cell area in µm².
    pub area_um2: f64,
    /// Critical-path delay in ns.
    pub delay_ns: f64,
    /// Total power (dynamic + leakage) in mW at the configured clock.
    pub power_mw: f64,
    /// Dynamic component of `power_mw`.
    pub dynamic_mw: f64,
    /// Leakage component of `power_mw`.
    pub leakage_mw: f64,
    /// Number of mapped cells.
    pub cells: usize,
}

/// Per-node role in a fused compound cell (FA/HA pattern fusion).
#[derive(Clone, Copy, Debug)]
enum Role {
    FaSum,
    FaCarry,
    Absorbed,
    HaSum,
    HaCarry,
}

/// Reusable buffers for repeated [`synthesize_asic_with`] calls.
///
/// Activity estimation is the dominant allocation in ASIC synthesis (a
/// simulator value buffer plus a probability vector per call); workers
/// that synthesize a whole library keep one `AsicScratch` alive so the
/// steady state is allocation-free. Results are bit-identical to
/// [`synthesize_asic`].
#[derive(Debug, Default)]
pub struct AsicScratch {
    sim: SimScratch,
    probs: Vec<f64>,
    role: Vec<Option<Role>>,
    arrival_ps: Vec<f64>,
}

impl AsicScratch {
    /// An empty scratch; buffers grow to the largest netlist seen.
    pub fn new() -> AsicScratch {
        AsicScratch::default()
    }
}

/// Map `netlist` onto the configured cell library and report area, timing
/// and power.
///
/// * **Area** — sum of mapped cell areas (inputs/constants are free).
/// * **Delay** — topological STA; a cell's delay is its intrinsic delay
///   plus a per-fanout load term.
/// * **Power** — zero-delay switching activity `2·p·(1−p)` per net from
///   seeded random simulation; dynamic power is `Σ activity · E_cell · f`,
///   plus cell leakage.
///
/// Convenience wrapper over [`synthesize_asic_with`] with a fresh
/// [`AsicScratch`] per call.
pub fn synthesize_asic(netlist: &Netlist, config: &AsicConfig) -> AsicReport {
    synthesize_asic_with(netlist, config, &mut AsicScratch::new())
}

/// [`synthesize_asic`] with caller-owned scratch buffers — allocation-free
/// in steady state when sweeping a library.
pub fn synthesize_asic_with(
    netlist: &Netlist,
    config: &AsicConfig,
    scratch: &mut AsicScratch,
) -> AsicReport {
    let lib = &config.library;
    let fanout = analyze::fanout(netlist);

    // Optional FA/HA pattern fusion: per-node role in a compound cell.
    let role = &mut scratch.role;
    role.clear();
    role.resize(netlist.len(), None);
    let mut compound_cells = 0usize;
    let mut compound_area = 0.0f64;
    let mut compound_leak = 0.0f64;
    if config.fuse_adders {
        let fused = fusion::match_arith_cells(netlist);
        for cell in &fused.cells {
            match cell {
                FusedCell::FullAdder { sum, inner, carry } => {
                    role[*sum] = Some(Role::FaSum);
                    role[*carry] = Some(Role::FaCarry);
                    if let Some(i) = inner {
                        role[*i] = Some(Role::Absorbed);
                    }
                    compound_area += lib.full_adder.area_um2;
                    compound_leak += lib.full_adder.leakage_nw;
                    compound_cells += 1;
                }
                FusedCell::HalfAdder { sum, carry } => {
                    role[*sum] = Some(Role::HaSum);
                    role[*carry] = Some(Role::HaCarry);
                    compound_area += lib.half_adder.area_um2;
                    compound_leak += lib.half_adder.leakage_nw;
                    compound_cells += 1;
                }
            }
        }
    }

    let mut area = compound_area;
    let mut leak_nw = compound_leak;
    let mut cells = compound_cells;
    let arrival_ps = &mut scratch.arrival_ps;
    arrival_ps.clear();
    arrival_ps.resize(netlist.len(), 0.0);
    for (i, gate) in netlist.gates().iter().enumerate() {
        if !gate.is_logic() {
            continue;
        }
        let input_arrival = gate
            .operands()
            .map(|op| arrival_ps[op.index()])
            .fold(0.0f64, f64::max);
        let fo = fanout[i].max(1) as f64;
        arrival_ps[i] = match role[i] {
            None => {
                let cell = lib.cell(gate.kind());
                area += cell.area_um2;
                leak_nw += cell.leakage_nw;
                cells += 1;
                input_arrival + cell.delay_ps + cell.load_ps_per_fanout * fo
            }
            // The absorbed inner XOR is internal wiring of the compound
            // cell: its "arrival" is just the input arrival so the sum
            // node sees the true cell inputs.
            Some(Role::Absorbed) => input_arrival,
            Some(Role::FaSum) => {
                input_arrival + lib.full_adder.sum_delay_ps + lib.full_adder.load_ps_per_fanout * fo
            }
            Some(Role::FaCarry) => {
                input_arrival
                    + lib.full_adder.carry_delay_ps
                    + lib.full_adder.load_ps_per_fanout * fo
            }
            Some(Role::HaSum) => {
                input_arrival + lib.half_adder.sum_delay_ps + lib.half_adder.load_ps_per_fanout * fo
            }
            Some(Role::HaCarry) => {
                input_arrival
                    + lib.half_adder.carry_delay_ps
                    + lib.half_adder.load_ps_per_fanout * fo
            }
        };
    }
    let delay_ps = netlist
        .outputs()
        .iter()
        .map(|o| arrival_ps[o.index()])
        .fold(0.0f64, f64::max);

    // Switching activity from zero-delay signal probabilities.
    scratch.sim.signal_probabilities(
        netlist,
        config.activity_passes,
        config.seed,
        &mut scratch.probs,
    );
    let probs = &scratch.probs;
    let mut dynamic_fj_per_cycle = 0.0f64;
    for (i, gate) in netlist.gates().iter().enumerate() {
        if !gate.is_logic() {
            continue;
        }
        let p = probs[i];
        let activity = 2.0 * p * (1.0 - p);
        let energy = match role[i] {
            None => lib.cell(gate.kind()).energy_fj,
            Some(Role::Absorbed) => 0.0, // internal node of the compound cell
            Some(Role::FaSum) => lib.full_adder.sum_energy_fj,
            Some(Role::FaCarry) => lib.full_adder.carry_energy_fj,
            Some(Role::HaSum) => lib.half_adder.sum_energy_fj,
            Some(Role::HaCarry) => lib.half_adder.carry_energy_fj,
        };
        dynamic_fj_per_cycle += activity * energy;
    }
    // fJ/cycle * cycles/ns(GHz) = µW; report mW.
    let dynamic_mw = dynamic_fj_per_cycle * config.clock_ghz * 1e-3;
    let leakage_mw = leak_nw * 1e-6;

    AsicReport {
        area_um2: area,
        delay_ns: delay_ps * 1e-3,
        power_mw: dynamic_mw + leakage_mw,
        dynamic_mw,
        leakage_mw,
        cells,
    }
}

impl afp_runtime::Fingerprint for AsicConfig {
    fn fingerprint(&self, h: &mut afp_runtime::StableHasher) {
        h.write_str("asic-config");
        h.write_str(&self.library.name);
        for cell in &self.library.cells {
            h.write_f64(cell.area_um2);
            h.write_f64(cell.delay_ps);
            h.write_f64(cell.load_ps_per_fanout);
            h.write_f64(cell.leakage_nw);
            h.write_f64(cell.energy_fj);
        }
        for compound in [&self.library.full_adder, &self.library.half_adder] {
            h.write_f64(compound.area_um2);
            h.write_f64(compound.sum_delay_ps);
            h.write_f64(compound.carry_delay_ps);
            h.write_f64(compound.load_ps_per_fanout);
            h.write_f64(compound.leakage_nw);
            h.write_f64(compound.sum_energy_fj);
            h.write_f64(compound.carry_energy_fj);
        }
        h.write_f64(self.clock_ghz);
        h.write_usize(self.activity_passes);
        h.write_u64(self.seed);
        h.write_bool(self.fuse_adders);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::{adders, multipliers};

    fn report(netlist: &Netlist) -> AsicReport {
        synthesize_asic(netlist, &AsicConfig::default())
    }

    #[test]
    fn empty_netlist_costs_nothing() {
        let mut n = Netlist::new("wire");
        let a = n.add_input();
        n.set_outputs(vec![a]);
        let r = report(&n);
        assert_eq!(r.cells, 0);
        assert_eq!(r.area_um2, 0.0);
        assert_eq!(r.delay_ns, 0.0);
        assert_eq!(r.power_mw, 0.0);
    }

    #[test]
    fn single_gate_timing_includes_load() {
        let mut n = Netlist::new("g");
        let a = n.add_input();
        let b = n.add_input();
        let y = n.nand(a, b);
        n.set_outputs(vec![y]);
        let r = report(&n);
        let cell = CellLibrary::generic_45nm().cell(GateKind::Nand);
        let expected_ps = cell.delay_ps + cell.load_ps_per_fanout; // fanout 1
        assert!((r.delay_ns - expected_ps * 1e-3).abs() < 1e-9);
        assert_eq!(r.cells, 1);
    }

    #[test]
    fn bigger_circuits_cost_more() {
        let a8 = report(adders::ripple_carry(8).netlist());
        let a16 = report(adders::ripple_carry(16).netlist());
        assert!(a16.area_um2 > a8.area_um2);
        assert!(a16.delay_ns > a8.delay_ns);
        assert!(a16.power_mw > a8.power_mw);
    }

    #[test]
    fn cla_trades_area_for_speed() {
        let rca = report(adders::ripple_carry(16).netlist());
        let cla = report(adders::carry_lookahead(16).netlist());
        assert!(cla.delay_ns < rca.delay_ns, "CLA should be faster");
        assert!(cla.area_um2 > rca.area_um2, "CLA should be bigger");
    }

    #[test]
    fn wallace_faster_than_array() {
        let arr = report(multipliers::array_multiplier(8).netlist());
        let wal = report(multipliers::wallace_multiplier(8).netlist());
        assert!(wal.delay_ns < arr.delay_ns);
    }

    #[test]
    fn truncation_saves_everything() {
        let exact = report(multipliers::wallace_multiplier(8).netlist());
        let mut t = multipliers::truncated(8, 8);
        t.simplify();
        let approx = report(t.netlist());
        assert!(approx.area_um2 < exact.area_um2);
        assert!(approx.power_mw < exact.power_mw);
    }

    #[test]
    fn reports_are_deterministic() {
        let m = multipliers::wallace_multiplier(8);
        let r1 = report(m.netlist());
        let r2 = report(m.netlist());
        assert_eq!(r1, r2);
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        // One warm scratch across dissimilar netlists (shrinking and
        // growing buffers) must reproduce fresh-scratch reports exactly.
        let mut scratch = AsicScratch::new();
        let cfg = AsicConfig::default();
        for nl in [
            multipliers::wallace_multiplier(8).into_netlist(),
            adders::ripple_carry(4).into_netlist(),
            adders::carry_lookahead(16).into_netlist(),
        ] {
            let fresh = synthesize_asic(&nl, &cfg);
            let reused = synthesize_asic_with(&nl, &cfg, &mut scratch);
            assert_eq!(fresh, reused, "{}", nl.name());
        }
    }

    #[test]
    fn power_splits_into_components() {
        let r = report(adders::carry_select(16).netlist());
        assert!(r.dynamic_mw > 0.0);
        assert!(r.leakage_mw > 0.0);
        assert!((r.power_mw - (r.dynamic_mw + r.leakage_mw)).abs() < 1e-12);
    }

    #[test]
    fn clock_scales_dynamic_power_linearly() {
        let n = adders::ripple_carry(8);
        let base = AsicConfig::default();
        let fast = AsicConfig {
            clock_ghz: 2.0,
            ..AsicConfig::default()
        };
        let r1 = synthesize_asic(n.netlist(), &base);
        let r2 = synthesize_asic(n.netlist(), &fast);
        assert!((r2.dynamic_mw - 2.0 * r1.dynamic_mw).abs() < 1e-12);
        assert!((r2.leakage_mw - r1.leakage_mw).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not cells")]
    fn input_is_not_a_cell() {
        let _ = CellLibrary::generic_45nm().cell(GateKind::Input);
    }

    #[test]
    fn fusion_cuts_ripple_adder_cost() {
        let nl = adders::ripple_carry(16).into_netlist();
        let fused = synthesize_asic(&nl, &AsicConfig::default());
        let discrete = synthesize_asic(
            &nl,
            &AsicConfig {
                fuse_adders: false,
                ..AsicConfig::default()
            },
        );
        assert!(
            fused.area_um2 < discrete.area_um2 * 0.85,
            "area {} vs {}",
            fused.area_um2,
            discrete.area_um2
        );
        assert!(fused.power_mw < discrete.power_mw);
        assert!(fused.cells < discrete.cells);
        assert!(fused.delay_ns <= discrete.delay_ns + 1e-9);
    }

    #[test]
    fn fusion_barely_affects_lookahead_adders() {
        // CLA has (almost) no FA patterns: fusion must be a near-no-op.
        let nl = adders::carry_lookahead(16).into_netlist();
        let fused = synthesize_asic(&nl, &AsicConfig::default());
        let discrete = synthesize_asic(
            &nl,
            &AsicConfig {
                fuse_adders: false,
                ..AsicConfig::default()
            },
        );
        let rel = (discrete.area_um2 - fused.area_um2) / discrete.area_um2;
        assert!(rel < 0.12, "CLA area changed by {:.1}%", 100.0 * rel);
    }

    #[test]
    fn fusion_widens_the_rca_vs_cla_contrast() {
        // With FA cells, RCA gets cheaper while CLA stays put — the
        // architectural spread the ASIC pareto front is built from.
        let rca = adders::ripple_carry(16).into_netlist();
        let cla = adders::carry_lookahead(16).into_netlist();
        let cfg = AsicConfig::default();
        let r = synthesize_asic(&rca, &cfg);
        let c = synthesize_asic(&cla, &cfg);
        assert!(
            c.area_um2 / r.area_um2 > 2.0,
            "ratio {}",
            c.area_um2 / r.area_um2
        );
    }
}

//! Arithmetic-cell fusion: pattern-match full-adder and half-adder
//! structures and price them as dedicated compound cells.
//!
//! Real standard-cell libraries ship `FA`/`HA` cells that are
//! substantially cheaper than their discrete XOR/MAJ/AND decomposition;
//! synthesis tools match the patterns during technology mapping. This
//! module does the same on our netlists:
//!
//! * **Full adder** — a `Maj(a,b,c)` carry paired with a sum
//!   `Xor(Xor(a,b),c)` (any operand order) over the same three nets, with
//!   the inner XOR absorbed when the pair is its only reader.
//! * **Half adder** — an `And(a,b)` carry paired with `Xor(a,b)`.
//!
//! Fusion affects cost accounting only: the netlist is never rewritten,
//! so behavioural results are untouched. The effect on the reports is the
//! classic one — ripple-carry structures get markedly cheaper, flattened
//! carry-lookahead logic (no FA patterns) does not, widening exactly the
//! architectural contrast the paper's ASIC pareto fronts are built from.

use std::collections::{HashMap, HashSet};

use afp_netlist::{Gate, Netlist};

/// A matched compound-cell instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FusedCell {
    /// Full adder: (sum XOR3 root, inner XOR — absorbed when `Some`,
    /// carry MAJ).
    FullAdder {
        /// Node index of the outer (sum) XOR.
        sum: usize,
        /// Node index of the absorbed inner XOR, when it has no other
        /// readers.
        inner: Option<usize>,
        /// Node index of the MAJ carry.
        carry: usize,
    },
    /// Half adder: (XOR sum, AND carry).
    HalfAdder {
        /// Node index of the XOR sum.
        sum: usize,
        /// Node index of the AND carry.
        carry: usize,
    },
}

/// Result of the matching pass: fused instances plus the set of node
/// indices they cover (those are *not* priced as discrete cells).
#[derive(Clone, Debug, Default)]
pub struct Fusion {
    /// Matched compound cells.
    pub cells: Vec<FusedCell>,
    /// Every node absorbed into some compound cell.
    pub covered: HashSet<usize>,
}

impl Fusion {
    /// Number of matched full adders.
    pub fn full_adders(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, FusedCell::FullAdder { .. }))
            .count()
    }

    /// Number of matched half adders.
    pub fn half_adders(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, FusedCell::HalfAdder { .. }))
            .count()
    }
}

fn sorted3(mut v: [usize; 3]) -> [usize; 3] {
    v.sort_unstable();
    v
}

/// Match FA/HA patterns over `netlist`.
///
/// Matching is greedy and deterministic (node order); a node joins at
/// most one compound cell.
pub fn match_arith_cells(netlist: &Netlist) -> Fusion {
    let gates = netlist.gates();
    let fanout = afp_netlist::analyze::fanout(netlist);

    // Index MAJ gates by their sorted operand triple.
    let mut maj_of: HashMap<[usize; 3], Vec<usize>> = HashMap::new();
    for (i, g) in gates.iter().enumerate() {
        if let Gate::Maj(a, b, c) = g {
            maj_of
                .entry(sorted3([a.index(), b.index(), c.index()]))
                .or_default()
                .push(i);
        }
    }

    let mut fusion = Fusion::default();
    let mut taken: HashSet<usize> = HashSet::new();

    // Full adders: outer XOR whose one operand is an inner XOR.
    for (i, g) in gates.iter().enumerate() {
        let Gate::Xor(x, y) = g else { continue };
        if taken.contains(&i) {
            continue;
        }
        for (inner_idx, third) in [(x.index(), y.index()), (y.index(), x.index())] {
            let Gate::Xor(a, b) = gates[inner_idx] else {
                continue;
            };
            if taken.contains(&inner_idx) {
                continue;
            }
            let triple = sorted3([a.index(), b.index(), third]);
            let Some(majs) = maj_of.get_mut(&triple) else {
                continue;
            };
            let Some(maj_idx) = majs.iter().position(|m| !taken.contains(m)) else {
                continue;
            };
            let carry = majs.remove(maj_idx);
            // Absorb the inner XOR only when this sum is its only reader.
            let inner = if fanout[inner_idx] == 1 {
                taken.insert(inner_idx);
                Some(inner_idx)
            } else {
                None
            };
            taken.insert(i);
            taken.insert(carry);
            fusion.cells.push(FusedCell::FullAdder {
                sum: i,
                inner,
                carry,
            });
            break;
        }
    }

    // Half adders: Xor(a,b) + And(a,b) over the same pair.
    let mut and_of: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for (i, g) in gates.iter().enumerate() {
        if taken.contains(&i) {
            continue;
        }
        if let Gate::And(a, b) = g {
            let key = if a <= b {
                (a.index(), b.index())
            } else {
                (b.index(), a.index())
            };
            and_of.entry(key).or_default().push(i);
        }
    }
    for (i, g) in gates.iter().enumerate() {
        let Gate::Xor(a, b) = g else { continue };
        if taken.contains(&i) {
            continue;
        }
        let key = if a <= b {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        let Some(ands) = and_of.get_mut(&key) else {
            continue;
        };
        let Some(pos) = ands.iter().position(|m| !taken.contains(m)) else {
            continue;
        };
        let carry = ands.remove(pos);
        taken.insert(i);
        taken.insert(carry);
        fusion.cells.push(FusedCell::HalfAdder { sum: i, carry });
    }

    fusion.covered = taken;
    fusion
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuits::{adders, multipliers};

    #[test]
    fn ripple_adder_is_mostly_full_adders() {
        let c = adders::ripple_carry(8);
        let f = match_arith_cells(c.netlist());
        // 7 full adders + 1 half adder in an 8-bit RCA.
        assert_eq!(f.full_adders(), 7, "{:?}", f.cells);
        assert_eq!(f.half_adders(), 1);
        // Each FA covers sum + inner + carry = 3 nodes; HA covers 2.
        assert_eq!(f.covered.len(), 7 * 3 + 2);
    }

    #[test]
    fn lookahead_adder_has_few_patterns() {
        let c = adders::carry_lookahead(8);
        let f = match_arith_cells(c.netlist());
        // CLA computes carries with AND/OR trees: no MAJ, no FAs.
        assert_eq!(f.full_adders(), 0);
    }

    #[test]
    fn multiplier_reduction_is_full_adder_rich() {
        let c = multipliers::wallace_multiplier(8);
        let f = match_arith_cells(c.netlist());
        assert!(f.full_adders() > 20, "only {} FAs", f.full_adders());
    }

    #[test]
    fn shared_inner_xor_is_not_absorbed() {
        use afp_netlist::Netlist;
        let mut n = Netlist::new("shared");
        let a = n.add_input();
        let b = n.add_input();
        let cin = n.add_input();
        let axb = n.xor(a, b);
        let sum = n.xor(axb, cin);
        let carry = n.maj(a, b, cin);
        let extra = n.not(axb); // second reader of the inner xor
        n.set_outputs(vec![sum, carry, extra]);
        let f = match_arith_cells(&n);
        assert_eq!(f.full_adders(), 1);
        match &f.cells[0] {
            FusedCell::FullAdder { inner, .. } => assert_eq!(*inner, None),
            other => panic!("wrong match {other:?}"),
        }
        assert!(!f.covered.contains(&axb.index()));
    }

    #[test]
    fn nodes_join_at_most_one_cell() {
        let c = multipliers::array_multiplier(8);
        let f = match_arith_cells(c.netlist());
        let mut seen = HashSet::new();
        for cell in &f.cells {
            let nodes: Vec<usize> = match cell {
                FusedCell::FullAdder { sum, inner, carry } => {
                    let mut v = vec![*sum, *carry];
                    v.extend(inner.iter().copied());
                    v
                }
                FusedCell::HalfAdder { sum, carry } => vec![*sum, *carry],
            };
            for n in nodes {
                assert!(seen.insert(n), "node {n} in two cells");
            }
        }
    }
}

//! Kernel methods: kernel ridge regression (ML10) and Gaussian-process
//! regression (ML8), both with an RBF kernel on standardized features.

use afp_store::bytes::put_f64;
use afp_store::ByteReader;

use crate::codec::{self, ModelState};
use crate::linalg::{chol_solve, cholesky};
use crate::preprocess::Standardizer;
use crate::{check_xy, Matrix, MlError, Regressor};

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

/// Shared fitted state of the RBF kernel models.
#[derive(Clone, Debug, Default)]
struct KernelState {
    scaler: Option<Standardizer>,
    train: Vec<Vec<f64>>,
    dual: Vec<f64>,
    y_mean: f64,
}

impl KernelState {
    fn fit(x: &Matrix, y: &[f64], gamma: f64, diag_add: f64) -> Result<KernelState, MlError> {
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        let n = z.rows();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        let rows: Vec<Vec<f64>> = (0..n).map(|r| z.row(r).to_vec()).collect();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = rbf(&rows[i], &rows[j], gamma);
                k.set(i, j, v);
                k.set(j, i, v);
            }
            k.set(i, i, k.get(i, i) + diag_add);
        }
        let l = cholesky(&k)?;
        let dual = chol_solve(&l, &yc);
        Ok(KernelState {
            scaler: Some(scaler),
            train: rows,
            dual,
            y_mean,
        })
    }

    fn predict_row(&self, row: &[f64], gamma: f64) -> f64 {
        let scaler = self.scaler.as_ref().expect("model must be fitted first");
        let z = scaler.transform_row(row);
        let k: f64 = self
            .train
            .iter()
            .zip(&self.dual)
            .map(|(t, a)| a * rbf(&z, t, gamma))
            .sum();
        k + self.y_mean
    }

    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_scaler(out, &self.scaler);
        codec::put_rows(out, &self.train);
        codec::put_vec(out, &self.dual);
        put_f64(out, self.y_mean);
    }

    fn decode(r: &mut ByteReader) -> Option<KernelState> {
        Some(KernelState {
            scaler: codec::read_scaler(r)?,
            train: codec::read_rows(r)?,
            dual: codec::read_vec(r)?,
            y_mean: r.f64_le()?,
        })
    }
}

/// Kernel ridge regression with RBF kernel — ML10.
///
/// # Example
///
/// ```
/// use afp_ml::kernel::KernelRidge;
/// use afp_ml::{Matrix, Regressor};
///
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
/// let y = [0.0, 1.0, 4.0, 9.0]; // x²
/// let mut m = KernelRidge::new(0.5, 1e-3);
/// m.fit(&x, &y)?;
/// assert!((m.predict_row(&[1.5]) - 2.25).abs() < 1.0);
/// # Ok::<(), afp_ml::MlError>(())
/// ```
#[derive(Clone, Debug)]
pub struct KernelRidge {
    gamma: f64,
    lambda: f64,
    state: KernelState,
}

impl KernelRidge {
    /// RBF kernel ridge with bandwidth `gamma` and penalty `lambda`.
    pub fn new(gamma: f64, lambda: f64) -> KernelRidge {
        KernelRidge {
            gamma,
            lambda,
            state: KernelState::default(),
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<KernelRidge> {
        Some(KernelRidge {
            gamma: r.f64_le()?,
            lambda: r.f64_le()?,
            state: KernelState::decode(r)?,
        })
    }
}

impl Default for KernelRidge {
    fn default() -> KernelRidge {
        KernelRidge::new(0.08, 1e-3)
    }
}

impl Regressor for KernelRidge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        self.state = KernelState::fit(x, y, self.gamma, self.lambda.max(1e-10) * x.rows() as f64)?;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.state.predict_row(row, self.gamma)
    }

    fn name(&self) -> &'static str {
        "kernel ridge"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        put_f64(&mut payload, self.gamma);
        put_f64(&mut payload, self.lambda);
        self.state.encode(&mut payload);
        Some(ModelState {
            tag: codec::TAG_KRR,
            payload,
        })
    }
}

/// Gaussian-process regression (RBF kernel, Gaussian noise) — ML8.
///
/// The predictive mean coincides with kernel ridge on `K + σ²I`; the
/// hyperparameters are interpreted as kernel bandwidth and observation
/// noise. [`GaussianProcess::predict_with_std`] additionally returns the
/// predictive standard deviation.
#[derive(Clone, Debug)]
pub struct GaussianProcess {
    gamma: f64,
    noise: f64,
    state: KernelState,
    chol: Option<Matrix>,
}

impl GaussianProcess {
    /// GP with RBF bandwidth `gamma` and noise variance `noise`.
    pub fn new(gamma: f64, noise: f64) -> GaussianProcess {
        GaussianProcess {
            gamma,
            noise,
            state: KernelState::default(),
            chol: None,
        }
    }

    /// Rebuild the noise-augmented kernel Cholesky from the training
    /// rows — the same computation `fit` performs, so a decoded model is
    /// bit-identical to the one that was saved.
    fn rebuild_chol(train: &[Vec<f64>], gamma: f64, noise: f64) -> Result<Matrix, MlError> {
        let n = train.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = rbf(&train[i], &train[j], gamma);
                k.set(i, j, v);
                k.set(j, i, v);
            }
            k.set(i, i, k.get(i, i) + noise.max(1e-10));
        }
        cholesky(&k)
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<GaussianProcess> {
        let gamma = r.f64_le()?;
        let noise = r.f64_le()?;
        let state = KernelState::decode(r)?;
        let chol = match r.u8()? {
            0 => None,
            1 => Some(GaussianProcess::rebuild_chol(&state.train, gamma, noise).ok()?),
            _ => return None,
        };
        Some(GaussianProcess {
            gamma,
            noise,
            state,
            chol,
        })
    }

    /// Predictive mean and standard deviation for one row.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Regressor::fit`].
    pub fn predict_with_std(&self, row: &[f64]) -> (f64, f64) {
        let mean = self.state.predict_row(row, self.gamma);
        let l = self.chol.as_ref().expect("model must be fitted first");
        let scaler = self.state.scaler.as_ref().expect("fitted");
        let z = scaler.transform_row(row);
        let kstar: Vec<f64> = self
            .state
            .train
            .iter()
            .map(|t| rbf(&z, t, self.gamma))
            .collect();
        let v = chol_solve(l, &kstar);
        let var =
            (1.0 + self.noise - kstar.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>()).max(0.0);
        (mean, var.sqrt())
    }
}

impl Default for GaussianProcess {
    fn default() -> GaussianProcess {
        GaussianProcess::new(0.08, 1e-2)
    }
}

impl Regressor for GaussianProcess {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        self.state = KernelState::fit(x, y, self.gamma, self.noise.max(1e-10))?;
        // Rebuild the kernel Cholesky for predictive variance (the exact
        // computation `decode_state` replays when restoring).
        self.chol = Some(GaussianProcess::rebuild_chol(
            &self.state.train,
            self.gamma,
            self.noise,
        )?);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.state.predict_row(row, self.gamma)
    }

    fn name(&self) -> &'static str {
        "gaussian process"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        put_f64(&mut payload, self.gamma);
        put_f64(&mut payload, self.noise);
        self.state.encode(&mut payload);
        payload.push(self.chol.is_some() as u8);
        Some(ModelState {
            tag: codec::TAG_GP,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn quad(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64 * 4.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0] * r[0] - r[0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), ys)
    }

    #[test]
    fn kernel_ridge_interpolates_smooth_function() {
        let (x, y) = quad(40);
        let mut m = KernelRidge::new(0.5, 1e-4);
        m.fit(&x, &y).unwrap();
        assert!(r2(&m.predict(&x), &y) > 0.999);
    }

    #[test]
    fn gp_mean_matches_kernel_ridge_with_same_params() {
        let (x, y) = quad(25);
        let mut kr = KernelRidge::new(0.3, 0.0);
        let mut gp = GaussianProcess::new(0.3, 1e-6 * 25.0);
        // KernelRidge multiplies lambda by n; align the diagonals.
        kr.lambda = 1e-6;
        kr.fit(&x, &y).unwrap();
        gp.fit(&x, &y).unwrap();
        for r in 0..x.rows() {
            let d = (kr.predict_row(x.row(r)) - gp.predict_row(x.row(r))).abs();
            assert!(d < 1e-6, "row {r}: {d}");
        }
    }

    #[test]
    fn gp_uncertainty_grows_away_from_data() {
        let (x, y) = quad(20);
        let mut gp = GaussianProcess::new(0.5, 1e-4);
        gp.fit(&x, &y).unwrap();
        let (_, s_in) = gp.predict_with_std(x.row(10));
        let (_, s_out) = gp.predict_with_std(&[100.0]);
        assert!(s_out > s_in * 2.0, "in {s_in} out {s_out}");
    }

    #[test]
    fn duplicate_training_points_are_handled() {
        // Duplicates make K singular without the noise/penalty diagonal.
        let x = Matrix::from_rows(&[&[1.0], &[1.0], &[2.0]]);
        let y = [3.0, 3.0, 5.0];
        let mut m = KernelRidge::default();
        m.fit(&x, &y).unwrap();
        assert!((m.predict_row(&[1.0]) - 3.0).abs() < 0.8);
    }
}

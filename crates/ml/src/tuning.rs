//! Hyperparameter grids — the "Modification of ML parameters" feedback
//! box of the paper's Fig. 2.
//!
//! The paper iteratively re-trains each model with modified parameters and
//! keeps the configuration with the best validation accuracy. This module
//! provides a small, fixed grid of candidate configurations per model;
//! the selection loop itself lives in `approxfpgas::fidelity`
//! (`train_zoo_tuned`), which scores every candidate on the validation
//! split by fidelity.

use crate::boost::{AdaBoostR2, GradientBoosting};
use crate::forest::RandomForest;
use crate::kernel::{GaussianProcess, KernelRidge};
use crate::linear::{BayesianRidge, Lasso, LeastAngle, Ridge, SgdRegressor, SingleFeature};
use crate::mlp::Mlp;
use crate::neighbors::KNearest;
use crate::pls::PlsRegression;
use crate::symbolic::SymbolicRegression;
use crate::tree::{DecisionTree, TreeConfig};
use crate::zoo::{AsicColumns, MlModelId};
use crate::Regressor;

/// One tunable configuration: a label and a fresh untrained model.
pub struct Candidate {
    /// Human-readable configuration label, e.g. `"lambda=1e-3"`.
    pub label: String,
    /// The untrained model.
    pub model: Box<dyn Regressor>,
}

fn cand(label: impl Into<String>, model: Box<dyn Regressor>) -> Candidate {
    Candidate {
        label: label.into(),
        model,
    }
}

fn tree_cfg(depth: usize) -> TreeConfig {
    TreeConfig {
        max_depth: depth,
        ..TreeConfig::default()
    }
}

/// The hyperparameter grid for `id`. The first entry always matches
/// [`crate::build_model`]'s default, so tuning can only improve on the
/// untuned zoo.
pub fn hyper_grid(id: MlModelId, asic: AsicColumns) -> Vec<Candidate> {
    match id {
        // The plain regressions have no free parameters.
        MlModelId::Ml1 => vec![cand("default", Box::new(SingleFeature::new(asic.power)))],
        MlModelId::Ml2 => vec![cand("default", Box::new(SingleFeature::new(asic.latency)))],
        MlModelId::Ml3 => vec![cand("default", Box::new(SingleFeature::new(asic.area)))],
        MlModelId::Ml4 => [4usize, 2, 8]
            .iter()
            .map(|&c| {
                cand(
                    format!("components={c}"),
                    Box::new(PlsRegression::new(c)) as _,
                )
            })
            .collect(),
        MlModelId::Ml5 => [40usize, 20, 80]
            .iter()
            .map(|&t| {
                cand(
                    format!("trees={t}"),
                    Box::new(RandomForest::new(t, Default::default(), 0x5EED_0005)) as _,
                )
            })
            .collect(),
        MlModelId::Ml6 => vec![
            cand("default", Box::new(GradientBoosting::default())),
            cand(
                "stages=60,lr=0.1",
                Box::new(GradientBoosting::new(60, 0.1, tree_cfg(3))),
            ),
            cand(
                "stages=120,lr=0.05,depth=4",
                Box::new(GradientBoosting::new(120, 0.05, tree_cfg(4))),
            ),
        ],
        MlModelId::Ml7 => vec![
            cand("default", Box::new(AdaBoostR2::default())),
            cand("stages=25", Box::new(AdaBoostR2::new(25, tree_cfg(4)))),
            cand(
                "stages=50,depth=6",
                Box::new(AdaBoostR2::new(50, tree_cfg(6))),
            ),
        ],
        MlModelId::Ml8 => vec![
            cand("default", Box::new(GaussianProcess::default())),
            cand("gamma=0.02", Box::new(GaussianProcess::new(0.02, 1e-2))),
            cand("gamma=0.3", Box::new(GaussianProcess::new(0.3, 1e-2))),
            cand("noise=0.1", Box::new(GaussianProcess::new(0.08, 1e-1))),
        ],
        MlModelId::Ml9 => vec![
            cand("default", Box::new(SymbolicRegression::default())),
            cand(
                "pop=32,gens=20",
                Box::new(SymbolicRegression::new(32, 20, 4, 0x5E09)),
            ),
            cand(
                "depth=5",
                Box::new(SymbolicRegression::new(64, 30, 5, 0x5E09)),
            ),
        ],
        MlModelId::Ml10 => vec![
            cand("default", Box::new(KernelRidge::default())),
            cand("gamma=0.02", Box::new(KernelRidge::new(0.02, 1e-3))),
            cand("gamma=0.3", Box::new(KernelRidge::new(0.3, 1e-3))),
            cand("lambda=1e-1", Box::new(KernelRidge::new(0.08, 1e-1))),
        ],
        MlModelId::Ml11 => vec![
            cand("default", Box::new(BayesianRidge::default())),
            cand("iters=15", Box::new(BayesianRidge::new(15))),
            cand("iters=60", Box::new(BayesianRidge::new(60))),
        ],
        MlModelId::Ml12 => [0.005f64, 0.001, 0.02]
            .iter()
            .map(|&l| cand(format!("lambda={l}"), Box::new(Lasso::new(l, 200)) as _))
            .collect(),
        MlModelId::Ml13 => [8usize, 4, 16]
            .iter()
            .map(|&k| cand(format!("features={k}"), Box::new(LeastAngle::new(k)) as _))
            .collect(),
        MlModelId::Ml14 => [1e-3f64, 1e-4, 1e-2, 1e-1]
            .iter()
            .map(|&l| cand(format!("lambda={l}"), Box::new(Ridge::new(l)) as _))
            .collect(),
        MlModelId::Ml15 => vec![
            cand("default", Box::new(SgdRegressor::default())),
            cand(
                "lr=0.003",
                Box::new(SgdRegressor::new(200, 0.003, 1e-4, 17)),
            ),
            cand("lr=0.03", Box::new(SgdRegressor::new(200, 0.03, 1e-4, 17))),
        ],
        MlModelId::Ml16 => [5usize, 3, 9]
            .iter()
            .map(|&k| cand(format!("k={k}"), Box::new(KNearest::new(k)) as _))
            .collect(),
        MlModelId::Ml17 => vec![
            cand("default", Box::new(Mlp::default())),
            cand("hidden=8", Box::new(Mlp::new(8, 400, 0.01, 23))),
            cand("hidden=32", Box::new(Mlp::new(32, 400, 0.01, 23))),
        ],
        MlModelId::Ml18 => [12usize, 6, 18]
            .iter()
            .map(|&d| {
                cand(
                    format!("depth={d}"),
                    Box::new(DecisionTree::new(tree_cfg(d))) as _,
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn asic() -> AsicColumns {
        AsicColumns {
            power: 0,
            latency: 1,
            area: 2,
        }
    }

    #[test]
    fn every_model_has_a_grid_with_a_default_head() {
        for id in MlModelId::ALL {
            let grid = hyper_grid(id, asic());
            assert!(!grid.is_empty(), "{id}");
            if id.is_asic_regression() {
                assert_eq!(grid.len(), 1, "{id} has no free parameters");
            } else {
                assert!(grid.len() >= 2, "{id} grid too small");
            }
            // Labels are unique within a grid.
            let labels: std::collections::HashSet<&str> =
                grid.iter().map(|c| c.label.as_str()).collect();
            assert_eq!(labels.len(), grid.len(), "{id} duplicate labels");
        }
    }

    #[test]
    fn grid_candidates_all_train() {
        let x = Matrix::from_rows(&[
            &[0.0, 1.0, 2.0],
            &[1.0, 0.0, 1.0],
            &[2.0, 2.0, 0.0],
            &[3.0, 1.0, 2.0],
            &[4.0, 0.0, 1.0],
            &[5.0, 2.0, 0.0],
            &[6.0, 1.0, 2.0],
            &[7.0, 0.0, 1.0],
        ]);
        let y: Vec<f64> = (0..8).map(|i| i as f64 * 2.0 + 1.0).collect();
        for id in [MlModelId::Ml14, MlModelId::Ml16, MlModelId::Ml18] {
            for mut c in hyper_grid(id, asic()) {
                c.model
                    .fit(&x, &y)
                    .unwrap_or_else(|e| panic!("{id}/{}: {e}", c.label));
                let p = c.model.predict_row(&[4.0, 1.0, 1.0]);
                assert!(p.is_finite());
            }
        }
    }
}

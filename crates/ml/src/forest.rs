//! Random forest regression — ML5.

use afp_store::ByteReader;

use crate::codec::{self, ModelState};
use crate::tree::{self, DecisionTree, TreeConfig};
use crate::{check_xy, Matrix, MlError, Regressor};

/// Bagged ensemble of randomized CART trees.
///
/// Each tree trains on a bootstrap resample and considers a random feature
/// subset at every split; predictions are the ensemble mean.
///
/// # Example
///
/// ```
/// use afp_ml::forest::RandomForest;
/// use afp_ml::{Matrix, Regressor};
///
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[10.0], &[11.0]]);
/// let y = [0.0, 0.1, 0.2, 0.3, 5.0, 5.1];
/// let mut f = RandomForest::new(20, Default::default(), 7);
/// f.fit(&x, &y)?;
/// assert!(f.predict_row(&[10.5]) > 2.0);
/// # Ok::<(), afp_ml::MlError>(())
/// ```
#[derive(Clone, Debug)]
pub struct RandomForest {
    n_trees: usize,
    tree_config: TreeConfig,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Forest of `n_trees` trees grown under `tree_config`, seeded
    /// deterministically by `seed`.
    pub fn new(n_trees: usize, tree_config: TreeConfig, seed: u64) -> RandomForest {
        RandomForest {
            n_trees: n_trees.max(1),
            tree_config,
            seed,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has been fitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<RandomForest> {
        let n_trees = codec::read_usize(r)?;
        let tree_config = tree::decode_config(r)?;
        let seed = r.u64_le()?;
        let count = codec::read_usize(r)?;
        if count > r.remaining() {
            return None;
        }
        let trees = (0..count)
            .map(|_| DecisionTree::decode_state(r))
            .collect::<Option<Vec<_>>>()?;
        Some(RandomForest {
            n_trees,
            tree_config,
            seed,
            trees,
        })
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let n = x.rows();
        let p = x.cols();
        // sqrt(p) features per split, at least 1 (regression often uses
        // p/3; sqrt keeps trees decorrelated on our small feature sets).
        let feats = ((p as f64).sqrt().ceil() as usize).clamp(1, p);
        self.trees.clear();
        let mut rng = self.seed | 1;
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for t in 0..self.n_trees {
            // Bootstrap resample as per-sample integer weights.
            let mut w = vec![0.0; n];
            for _ in 0..n {
                w[(next() % n as u64) as usize] += 1.0;
            }
            let mut tree = DecisionTree::new(self.tree_config);
            tree.features_per_split = Some(feats);
            tree.seed = self.seed.wrapping_add(t as u64).wrapping_mul(0x9E37_79B9) | 1;
            tree.fit_weighted(x, y, &w)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "model must be fitted first");
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    fn name(&self) -> &'static str {
        "random forest"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.n_trees);
        tree::encode_config(&mut payload, &self.tree_config);
        payload.extend_from_slice(&self.seed.to_le_bytes());
        codec::put_usize(&mut payload, self.trees.len());
        for t in &self.trees {
            t.encode_state(&mut payload);
        }
        Some(ModelState {
            tag: codec::TAG_FOREST,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn friedman_like(n: usize) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut s = 77u64;
        for _ in 0..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((s >> 20) & 0x3FF) as f64 / 1023.0;
            let b = ((s >> 30) & 0x3FF) as f64 / 1023.0;
            let c = ((s >> 40) & 0x3FF) as f64 / 1023.0;
            rows.push(vec![a, b, c]);
            ys.push(10.0 * (std::f64::consts::PI * a * b).sin() + 5.0 * c * c);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), ys)
    }

    #[test]
    fn forest_beats_single_tree_out_of_sample() {
        let (xtr, ytr) = friedman_like(400);
        let (xte, yte) = {
            // Different seed slice for test: regenerate and skip.
            let (x, y) = friedman_like(600);
            let rows: Vec<&[f64]> = (400..600).map(|r| x.row(r)).collect();
            (Matrix::from_rows(&rows), y[400..].to_vec())
        };
        let mut tree = crate::tree::DecisionTree::new(Default::default());
        tree.fit(&xtr, &ytr).unwrap();
        let mut forest = RandomForest::new(40, Default::default(), 3);
        forest.fit(&xtr, &ytr).unwrap();
        let r2_tree = r2(&tree.predict(&xte), &yte);
        let r2_forest = r2(&forest.predict(&xte), &yte);
        assert!(
            r2_forest > r2_tree - 0.02,
            "forest {r2_forest} vs tree {r2_tree}"
        );
        assert!(r2_forest > 0.8, "forest too weak: {r2_forest}");
    }

    #[test]
    fn forest_is_deterministic() {
        let (x, y) = friedman_like(100);
        let mut f1 = RandomForest::new(10, Default::default(), 9);
        let mut f2 = RandomForest::new(10, Default::default(), 9);
        f1.fit(&x, &y).unwrap();
        f2.fit(&x, &y).unwrap();
        assert_eq!(f1.predict(&x), f2.predict(&x));
    }

    #[test]
    fn tree_count_respected() {
        let (x, y) = friedman_like(50);
        let mut f = RandomForest::new(7, Default::default(), 1);
        f.fit(&x, &y).unwrap();
        assert_eq!(f.len(), 7);
    }
}

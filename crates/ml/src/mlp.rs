//! Multi-layer perceptron regression — ML17.
//!
//! One tanh hidden layer with a linear output, trained full-batch with
//! Adam. Deliberately small: the paper's models are "light-weight".

use afp_store::bytes::put_f64;
use afp_store::ByteReader;

use crate::codec::{self, ModelState};
use crate::preprocess::{mean, Standardizer};
use crate::{check_xy, Matrix, MlError, Regressor};

/// One-hidden-layer MLP regressor.
///
/// # Example
///
/// ```
/// use afp_ml::mlp::Mlp;
/// use afp_ml::{Matrix, Regressor};
///
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0]]);
/// let y = [0.0, 1.0, 2.0, 3.0, 4.0];
/// let mut m = Mlp::new(8, 400, 0.02, 11);
/// m.fit(&x, &y)?;
/// assert!((m.predict_row(&[2.5]) - 2.5).abs() < 0.5);
/// # Ok::<(), afp_ml::MlError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Mlp {
    hidden: usize,
    epochs: usize,
    learning_rate: f64,
    seed: u64,
    scaler: Option<Standardizer>,
    w1: Vec<f64>, // hidden x inputs
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
    y_mean: f64,
    y_scale: f64,
    inputs: usize,
}

impl Mlp {
    /// MLP with `hidden` tanh units trained for `epochs` Adam steps.
    pub fn new(hidden: usize, epochs: usize, learning_rate: f64, seed: u64) -> Mlp {
        Mlp {
            hidden: hidden.max(1),
            epochs: epochs.max(1),
            learning_rate,
            seed,
            scaler: None,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
            y_mean: 0.0,
            y_scale: 1.0,
            inputs: 0,
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<Mlp> {
        let m = Mlp {
            hidden: codec::read_usize(r)?,
            epochs: codec::read_usize(r)?,
            learning_rate: r.f64_le()?,
            seed: r.u64_le()?,
            scaler: codec::read_scaler(r)?,
            w1: codec::read_vec(r)?,
            b1: codec::read_vec(r)?,
            w2: codec::read_vec(r)?,
            b2: r.f64_le()?,
            y_mean: r.f64_le()?,
            y_scale: r.f64_le()?,
            inputs: codec::read_usize(r)?,
        };
        // A fitted network must be internally consistent or prediction
        // would index out of bounds on corrupt input.
        if m.scaler.is_some()
            && (m.w1.len() != m.hidden.checked_mul(m.inputs)?
                || m.b1.len() != m.hidden
                || m.w2.len() != m.hidden)
        {
            return None;
        }
        Some(m)
    }

    fn hidden_out(&self, z: &[f64]) -> Vec<f64> {
        (0..self.hidden)
            .map(|h| {
                let mut s = self.b1[h];
                for (i, zi) in z.iter().enumerate() {
                    s += self.w1[h * self.inputs + i] * zi;
                }
                s.tanh()
            })
            .collect()
    }
}

impl Default for Mlp {
    fn default() -> Mlp {
        Mlp::new(16, 400, 0.01, 23)
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        let n = z.rows();
        let p = z.cols();
        self.inputs = p;
        self.y_mean = mean(y);
        let y_var = y.iter().map(|v| (v - self.y_mean).powi(2)).sum::<f64>() / n as f64;
        self.y_scale = y_var.sqrt().max(1e-9);
        let yt: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_scale).collect();

        // Xavier-ish deterministic init.
        let mut state = self.seed | 1;
        let mut next_f = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            2.0 * u - 1.0
        };
        let scale1 = (1.0 / p as f64).sqrt();
        self.w1 = (0..self.hidden * p).map(|_| next_f() * scale1).collect();
        self.b1 = vec![0.0; self.hidden];
        let scale2 = (1.0 / self.hidden as f64).sqrt();
        self.w2 = (0..self.hidden).map(|_| next_f() * scale2).collect();
        self.b2 = 0.0;

        // Adam state.
        let dim = self.w1.len() + self.b1.len() + self.w2.len() + 1;
        let mut m = vec![0.0; dim];
        let mut v = vec![0.0; dim];
        let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);

        for t in 1..=self.epochs {
            // Full-batch gradients.
            let mut g = vec![0.0; dim];
            for (r, &ytr) in yt.iter().enumerate().take(n) {
                let zr = z.row(r);
                let h = self.hidden_out(zr);
                let out: f64 =
                    self.b2 + h.iter().zip(&self.w2).map(|(hi, wi)| hi * wi).sum::<f64>();
                let err = out - ytr;
                // Output layer.
                for (hi, idx) in h.iter().zip(0..self.hidden) {
                    g[self.w1.len() + self.b1.len() + idx] += err * hi;
                }
                g[dim - 1] += err;
                // Hidden layer.
                for hidx in 0..self.hidden {
                    let dh = err * self.w2[hidx] * (1.0 - h[hidx] * h[hidx]);
                    for (i, zi) in zr.iter().enumerate() {
                        g[hidx * p + i] += dh * zi;
                    }
                    g[self.w1.len() + hidx] += dh;
                }
            }
            let inv_n = 1.0 / n as f64;
            for gi in g.iter_mut() {
                *gi *= inv_n;
            }
            // Adam update over the flattened parameter vector.
            let lr =
                self.learning_rate * (1.0 - beta2f(beta2, t)).sqrt() / (1.0 - beta2f(beta1, t));
            let mut apply = |idx: usize, param: &mut f64| {
                m[idx] = beta1 * m[idx] + (1.0 - beta1) * g[idx];
                v[idx] = beta2 * v[idx] + (1.0 - beta2) * g[idx] * g[idx];
                *param -= lr * m[idx] / (v[idx].sqrt() + eps);
            };
            for (i, w) in self.w1.iter_mut().enumerate() {
                apply(i, w);
            }
            let off1 = self.w1.len();
            for (i, b) in self.b1.iter_mut().enumerate() {
                apply(off1 + i, b);
            }
            let off2 = off1 + self.b1.len();
            for (i, w) in self.w2.iter_mut().enumerate() {
                apply(off2 + i, w);
            }
            apply(dim - 1, &mut self.b2);
        }
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("model must be fitted first");
        let z = scaler.transform_row(row);
        let h = self.hidden_out(&z);
        let out: f64 = self.b2 + h.iter().zip(&self.w2).map(|(hi, wi)| hi * wi).sum::<f64>();
        out * self.y_scale + self.y_mean
    }

    fn name(&self) -> &'static str {
        "multi-layer perceptron"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.hidden);
        codec::put_usize(&mut payload, self.epochs);
        put_f64(&mut payload, self.learning_rate);
        payload.extend_from_slice(&self.seed.to_le_bytes());
        codec::put_scaler(&mut payload, &self.scaler);
        codec::put_vec(&mut payload, &self.w1);
        codec::put_vec(&mut payload, &self.b1);
        codec::put_vec(&mut payload, &self.w2);
        put_f64(&mut payload, self.b2);
        put_f64(&mut payload, self.y_mean);
        put_f64(&mut payload, self.y_scale);
        codec::put_usize(&mut payload, self.inputs);
        Some(ModelState {
            tag: codec::TAG_MLP,
            payload,
        })
    }
}

fn beta2f(beta: f64, t: usize) -> f64 {
    beta.powi(t as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    #[test]
    fn learns_linear_map() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 1.0).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut m = Mlp::default();
        m.fit(&x, &ys).unwrap();
        assert!(r2(&m.predict(&x), &ys) > 0.98);
    }

    #[test]
    fn learns_mild_nonlinearity() {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 20.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| (r[0] * 1.5).sin()).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut m = Mlp::new(24, 800, 0.02, 3);
        m.fit(&x, &ys).unwrap();
        assert!(r2(&m.predict(&x), &ys) > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0] * 0.5).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut a = Mlp::new(8, 100, 0.02, 7);
        let mut b = Mlp::new(8, 100, 0.02, 7);
        a.fit(&x, &ys).unwrap();
        b.fit(&x, &ys).unwrap();
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}

//! Symbolic regression via a small genetic program — ML9.
//!
//! Evolves arithmetic expression trees (features, constants, `+ - * /`,
//! `sqrt`) against RMSE. Deliberately modest (small population, few
//! generations): the paper lists symbolic regression among the
//! *light-weight* models, not as a heavyweight search.

use afp_store::bytes::put_f64;
use afp_store::ByteReader;

use crate::codec::{self, ModelState};
use crate::preprocess::Standardizer;
use crate::{check_xy, Matrix, MlError, Regressor};

/// An expression-tree node.
#[derive(Clone, Debug, PartialEq)]
enum Expr {
    Feature(usize),
    Constant(f64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    /// Protected division: denominator clamped away from zero.
    Div(Box<Expr>, Box<Expr>),
    Sqrt(Box<Expr>),
}

impl Expr {
    fn eval(&self, row: &[f64]) -> f64 {
        match self {
            Expr::Feature(i) => row[*i],
            Expr::Constant(c) => *c,
            Expr::Add(a, b) => a.eval(row) + b.eval(row),
            Expr::Sub(a, b) => a.eval(row) - b.eval(row),
            Expr::Mul(a, b) => a.eval(row) * b.eval(row),
            Expr::Div(a, b) => {
                let d = b.eval(row);
                a.eval(row)
                    / if d.abs() < 1e-6 {
                        1e-6_f64.copysign(d + 1e-12)
                    } else {
                        d
                    }
            }
            Expr::Sqrt(a) => a.eval(row).abs().sqrt(),
        }
    }

    fn size(&self) -> usize {
        match self {
            Expr::Feature(_) | Expr::Constant(_) => 1,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.size() + b.size()
            }
            Expr::Sqrt(a) => 1 + a.size(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Expr::Feature(i) => {
                out.push(0);
                codec::put_usize(out, *i);
            }
            Expr::Constant(c) => {
                out.push(1);
                put_f64(out, *c);
            }
            Expr::Add(a, b) => {
                out.push(2);
                a.encode(out);
                b.encode(out);
            }
            Expr::Sub(a, b) => {
                out.push(3);
                a.encode(out);
                b.encode(out);
            }
            Expr::Mul(a, b) => {
                out.push(4);
                a.encode(out);
                b.encode(out);
            }
            Expr::Div(a, b) => {
                out.push(5);
                a.encode(out);
                b.encode(out);
            }
            Expr::Sqrt(a) => {
                out.push(6);
                a.encode(out);
            }
        }
    }

    /// Largest feature index referenced anywhere in the expression.
    fn max_feature(&self) -> Option<usize> {
        match self {
            Expr::Feature(i) => Some(*i),
            Expr::Constant(_) => None,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                match (a.max_feature(), b.max_feature()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            Expr::Sqrt(a) => a.max_feature(),
        }
    }

    /// Decode with an explicit nesting budget so corrupt input cannot
    /// recurse past the stack.
    fn decode(r: &mut ByteReader, depth: usize) -> Option<Expr> {
        if depth == 0 {
            return None;
        }
        Some(match r.u8()? {
            0 => Expr::Feature(codec::read_usize(r)?),
            1 => Expr::Constant(r.f64_le()?),
            2 => Expr::Add(
                Box::new(Expr::decode(r, depth - 1)?),
                Box::new(Expr::decode(r, depth - 1)?),
            ),
            3 => Expr::Sub(
                Box::new(Expr::decode(r, depth - 1)?),
                Box::new(Expr::decode(r, depth - 1)?),
            ),
            4 => Expr::Mul(
                Box::new(Expr::decode(r, depth - 1)?),
                Box::new(Expr::decode(r, depth - 1)?),
            ),
            5 => Expr::Div(
                Box::new(Expr::decode(r, depth - 1)?),
                Box::new(Expr::decode(r, depth - 1)?),
            ),
            6 => Expr::Sqrt(Box::new(Expr::decode(r, depth - 1)?)),
            _ => return None,
        })
    }
}

/// Nesting budget for decoding persisted expressions: far above any tree
/// the GP can evolve, far below the thread stack.
const MAX_EXPR_DEPTH: usize = 256;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Genetic-programming symbolic regressor.
#[derive(Clone, Debug)]
pub struct SymbolicRegression {
    population: usize,
    generations: usize,
    max_depth: usize,
    seed: u64,
    scaler: Option<Standardizer>,
    best: Option<Expr>,
    y_mean: f64,
    y_scale: f64,
}

impl SymbolicRegression {
    /// GP with the given population size, generation count and tree depth
    /// limit.
    pub fn new(
        population: usize,
        generations: usize,
        max_depth: usize,
        seed: u64,
    ) -> SymbolicRegression {
        SymbolicRegression {
            population: population.max(4),
            generations,
            max_depth: max_depth.max(1),
            seed,
            scaler: None,
            best: None,
            y_mean: 0.0,
            y_scale: 1.0,
        }
    }

    /// Size (node count) of the best evolved expression.
    pub fn best_size(&self) -> Option<usize> {
        self.best.as_ref().map(Expr::size)
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<SymbolicRegression> {
        let m = SymbolicRegression {
            population: codec::read_usize(r)?,
            generations: codec::read_usize(r)?,
            max_depth: codec::read_usize(r)?,
            seed: r.u64_le()?,
            scaler: codec::read_scaler(r)?,
            best: match r.u8()? {
                0 => None,
                1 => Some(Expr::decode(r, MAX_EXPR_DEPTH)?),
                _ => return None,
            },
            y_mean: r.f64_le()?,
            y_scale: r.f64_le()?,
        };
        // Feature references must fit the standardized row width or
        // prediction would index out of bounds on corrupt input.
        if let (Some(s), Some(e)) = (&m.scaler, &m.best) {
            if e.max_feature().is_some_and(|f| f >= s.means().len()) {
                return None;
            }
        }
        Some(m)
    }

    fn random_expr(&self, rng: &mut Rng, features: usize, depth: usize) -> Expr {
        if depth == 0 || rng.unit() < 0.3 {
            if rng.unit() < 0.7 {
                Expr::Feature(rng.below(features))
            } else {
                Expr::Constant(rng.unit() * 4.0 - 2.0)
            }
        } else {
            let a = Box::new(self.random_expr(rng, features, depth - 1));
            let b = Box::new(self.random_expr(rng, features, depth - 1));
            match rng.below(5) {
                0 => Expr::Add(a, b),
                1 => Expr::Sub(a, b),
                2 => Expr::Mul(a, b),
                3 => Expr::Div(a, b),
                _ => Expr::Sqrt(a),
            }
        }
    }

    fn mutate(&self, e: &Expr, rng: &mut Rng, features: usize) -> Expr {
        if rng.unit() < 0.3 {
            return self.random_expr(rng, features, self.max_depth.min(2));
        }
        match e {
            Expr::Feature(_) | Expr::Constant(_) => self.random_expr(rng, features, 1),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                let (na, nb) = if rng.unit() < 0.5 {
                    (self.mutate(a, rng, features), (**b).clone())
                } else {
                    ((**a).clone(), self.mutate(b, rng, features))
                };
                match rng.below(4) {
                    0 => Expr::Add(Box::new(na), Box::new(nb)),
                    1 => Expr::Sub(Box::new(na), Box::new(nb)),
                    2 => Expr::Mul(Box::new(na), Box::new(nb)),
                    _ => Expr::Div(Box::new(na), Box::new(nb)),
                }
            }
            Expr::Sqrt(a) => Expr::Sqrt(Box::new(self.mutate(a, rng, features))),
        }
    }
}

impl Default for SymbolicRegression {
    fn default() -> SymbolicRegression {
        SymbolicRegression::new(64, 30, 4, 0x5E09)
    }
}

impl Regressor for SymbolicRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        let n = z.rows();
        let features = z.cols();
        self.y_mean = y.iter().sum::<f64>() / n as f64;
        let y_var = y.iter().map(|v| (v - self.y_mean).powi(2)).sum::<f64>() / n as f64;
        self.y_scale = y_var.sqrt().max(1e-9);
        let yt: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_scale).collect();
        let rows: Vec<&[f64]> = (0..n).map(|r| z.row(r)).collect();

        let fitness = |e: &Expr| -> f64 {
            let mut sse = 0.0;
            for (row, t) in rows.iter().zip(&yt) {
                let p = e.eval(row);
                if !p.is_finite() {
                    return f64::INFINITY;
                }
                sse += (p - t) * (p - t);
            }
            (sse / n as f64).sqrt() + 0.001 * e.size() as f64 // parsimony
        };

        let mut rng = Rng(self.seed | 1);
        let mut pop: Vec<(Expr, f64)> = (0..self.population)
            .map(|_| {
                let e = self.random_expr(&mut rng, features, self.max_depth);
                let f = fitness(&e);
                (e, f)
            })
            .collect();
        for _ in 0..self.generations {
            let mut next: Vec<(Expr, f64)> = Vec::with_capacity(self.population);
            // Elitism: keep the best individual.
            let best = pop
                .iter()
                .min_by(|a, b| afp_ord::asc(a.1, b.1))
                .expect("population is non-empty")
                .clone();
            next.push(best);
            while next.len() < self.population {
                // Tournament of 3.
                let pick = |rng: &mut Rng, pop: &[(Expr, f64)]| -> Expr {
                    let mut best: Option<&(Expr, f64)> = None;
                    for _ in 0..3 {
                        let c = &pop[rng.below(pop.len())];
                        if best.is_none_or(|b| afp_ord::asc(c.1, b.1).is_lt()) {
                            best = Some(c);
                        }
                    }
                    best.expect("tournament non-empty").0.clone()
                };
                let parent = pick(&mut rng, &pop);
                let child = self.mutate(&parent, &mut rng, features);
                if child.size() <= 2usize.pow(self.max_depth as u32 + 1) {
                    let f = fitness(&child);
                    next.push((child, f));
                }
            }
            pop = next;
        }
        let best = pop
            .into_iter()
            .min_by(|a, b| afp_ord::asc(a.1, b.1))
            .expect("population is non-empty");
        self.best = Some(best.0);
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("model must be fitted first");
        let e = self.best.as_ref().expect("model must be fitted first");
        let z = scaler.transform_row(row);
        let p = e.eval(&z);
        let p = if p.is_finite() { p } else { 0.0 };
        p * self.y_scale + self.y_mean
    }

    fn name(&self) -> &'static str {
        "symbolic regression"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.population);
        codec::put_usize(&mut payload, self.generations);
        codec::put_usize(&mut payload, self.max_depth);
        payload.extend_from_slice(&self.seed.to_le_bytes());
        codec::put_scaler(&mut payload, &self.scaler);
        match &self.best {
            None => payload.push(0),
            Some(e) => {
                payload.push(1);
                e.encode(&mut payload);
            }
        }
        put_f64(&mut payload, self.y_mean);
        put_f64(&mut payload, self.y_scale);
        Some(ModelState {
            tag: codec::TAG_SYMBOLIC,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{pearson, r2};

    fn linear_data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / 8.0, (i % 7) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] + 0.5).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), ys)
    }

    #[test]
    fn evolves_a_correlated_model() {
        let (x, y) = linear_data(80);
        let mut m = SymbolicRegression::default();
        m.fit(&x, &y).unwrap();
        let p = m.predict(&x);
        // GP is stochastic-by-seed; require a solid positive correlation
        // rather than near-perfect fit.
        assert!(pearson(&p, &y) > 0.8, "corr {}", pearson(&p, &y));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = linear_data(40);
        let mut a = SymbolicRegression::new(32, 10, 3, 9);
        let mut b = SymbolicRegression::new(32, 10, 3, 9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn parsimony_keeps_trees_bounded() {
        let (x, y) = linear_data(40);
        let mut m = SymbolicRegression::new(32, 15, 3, 4);
        m.fit(&x, &y).unwrap();
        assert!(m.best_size().unwrap() <= 16);
    }

    #[test]
    fn constant_target_is_learned() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = [5.0, 5.0, 5.0, 5.0];
        let mut m = SymbolicRegression::default();
        m.fit(&x, &y).unwrap();
        let p = m.predict(&x);
        assert!(r2(&p, &y) >= 0.0 || p.iter().all(|v| (v - 5.0).abs() < 0.5));
    }
}

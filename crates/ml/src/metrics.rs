//! Model evaluation metrics, including the paper's fidelity metric.

/// Fidelity of estimates against measurements (Eq. 1–2 of the paper).
///
/// For every *ordered pair* of samples, the relationship (`<`, `=`, `>`)
/// between the two estimated values must match the relationship between the
/// two measured values; fidelity is the fraction of pairs (including
/// self-pairs, as in the paper's `|X|²` normalization) where it does.
/// Values within `tolerance` (relative) compare as equal.
///
/// # Example
///
/// ```
/// use afp_ml::metrics::fidelity;
///
/// // Perfect monotone estimates give fidelity 1.
/// let mes = [1.0, 2.0, 3.0];
/// let est = [10.0, 20.0, 30.0];
/// assert_eq!(fidelity(&est, &mes, 0.0), 1.0);
/// ```
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn fidelity(estimated: &[f64], measured: &[f64], tolerance: f64) -> f64 {
    assert_eq!(estimated.len(), measured.len(), "length mismatch");
    let n = estimated.len();
    if n == 0 {
        return 0.0;
    }
    let cmp = |a: f64, b: f64| -> i8 {
        let scale = a.abs().max(b.abs()).max(1e-12);
        if (a - b).abs() <= tolerance * scale {
            0
        } else if a < b {
            -1
        } else {
            1
        }
    };
    let mut agree = 0usize;
    for i in 0..n {
        for j in 0..n {
            let e = cmp(estimated[i], estimated[j]);
            let m = cmp(measured[i], measured[j]);
            if e == m {
                agree += 1;
            }
        }
    }
    agree as f64 / (n * n) as f64
}

/// Coefficient of determination R².
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn r2(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let n = actual.len();
    if n == 0 {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (a - p) * (a - p))
        .sum();
    if ss_tot < 1e-12 {
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn mae(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Pearson linear correlation coefficient.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let (ma, mb) = (
        a.iter().sum::<f64>() / n as f64,
        b.iter().sum::<f64>() / n as f64,
    );
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va < 1e-18 || vb < 1e-18 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Spearman rank correlation (Pearson over average ranks).
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    pearson(&ranks(a), &ranks(b))
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| afp_ord::asc(v[i], v[j]));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_perfect_and_inverted() {
        let m = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert_eq!(fidelity(&up, &m, 0.0), 1.0);
        // Inverted ordering only agrees on the n self-pairs.
        assert_eq!(fidelity(&down, &m, 0.0), 4.0 / 16.0);
    }

    #[test]
    fn fidelity_tolerance_treats_near_values_equal() {
        let m = [1.0, 1.0];
        let e = [5.0, 5.0001];
        assert!(fidelity(&e, &m, 0.0) < 1.0);
        assert_eq!(fidelity(&e, &m, 0.01), 1.0);
    }

    #[test]
    fn r2_known_values() {
        let actual = [1.0, 2.0, 3.0];
        assert_eq!(r2(&actual, &actual), 1.0);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r2(&mean_pred, &actual).abs() < 1e-12);
    }

    #[test]
    fn pearson_and_spearman_sign() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 21.0, 28.0, 44.0];
        assert!(pearson(&a, &b) > 0.97);
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let inv = [44.0, 28.0, 21.0, 10.0];
        assert!((spearman(&a, &inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mae_zero_for_identical() {
        assert_eq!(mae(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mae(&[2.0, 4.0], &[1.0, 2.0]), 1.5);
    }
}

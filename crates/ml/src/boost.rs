//! Boosted tree ensembles: gradient boosting (ML6) and AdaBoost.R2 (ML7).

use afp_store::bytes::put_f64;
use afp_store::ByteReader;

use crate::codec::{self, ModelState};
use crate::tree::{self, DecisionTree, TreeConfig};
use crate::{check_xy, Matrix, MlError, Regressor};

/// Gradient-boosted regression trees (squared loss) — ML6.
///
/// Starts from the target mean and fits shallow trees to the residuals,
/// shrunk by the learning rate.
#[derive(Clone, Debug)]
pub struct GradientBoosting {
    n_stages: usize,
    learning_rate: f64,
    tree_config: TreeConfig,
    base: f64,
    stages: Vec<DecisionTree>,
}

impl GradientBoosting {
    /// Boosting with `n_stages` trees shrunk by `learning_rate`.
    pub fn new(n_stages: usize, learning_rate: f64, tree_config: TreeConfig) -> GradientBoosting {
        GradientBoosting {
            n_stages: n_stages.max(1),
            learning_rate,
            tree_config,
            base: 0.0,
            stages: Vec::new(),
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<GradientBoosting> {
        let n_stages = codec::read_usize(r)?;
        let learning_rate = r.f64_le()?;
        let tree_config = tree::decode_config(r)?;
        let base = r.f64_le()?;
        let count = codec::read_usize(r)?;
        if count > r.remaining() {
            return None;
        }
        let stages = (0..count)
            .map(|_| DecisionTree::decode_state(r))
            .collect::<Option<Vec<_>>>()?;
        Some(GradientBoosting {
            n_stages,
            learning_rate,
            tree_config,
            base,
            stages,
        })
    }
}

impl Default for GradientBoosting {
    fn default() -> GradientBoosting {
        GradientBoosting::new(
            120,
            0.1,
            TreeConfig {
                max_depth: 3,
                min_samples_split: 4,
                min_samples_leaf: 2,
            },
        )
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        self.stages.clear();
        let mut current: Vec<f64> = vec![self.base; y.len()];
        for _ in 0..self.n_stages {
            let residual: Vec<f64> = y.iter().zip(&current).map(|(t, c)| t - c).collect();
            let mut tree = DecisionTree::new(self.tree_config);
            tree.fit(x, &residual)?;
            for (c, row) in current.iter_mut().zip(0..x.rows()) {
                *c += self.learning_rate * tree.predict_row(x.row(row));
            }
            self.stages.push(tree);
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.stages.is_empty(), "model must be fitted first");
        self.base + self.learning_rate * self.stages.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    fn name(&self) -> &'static str {
        "gradient boosting"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.n_stages);
        put_f64(&mut payload, self.learning_rate);
        tree::encode_config(&mut payload, &self.tree_config);
        put_f64(&mut payload, self.base);
        codec::put_usize(&mut payload, self.stages.len());
        for t in &self.stages {
            t.encode_state(&mut payload);
        }
        Some(ModelState {
            tag: codec::TAG_BOOST,
            payload,
        })
    }
}

/// AdaBoost.R2 (Drucker 1997) with tree weak learners — ML7.
///
/// Each round reweights samples by their relative error; the final
/// prediction is the weighted **median** of the weak learners.
#[derive(Clone, Debug)]
pub struct AdaBoostR2 {
    n_stages: usize,
    tree_config: TreeConfig,
    stages: Vec<(DecisionTree, f64)>, // (learner, ln(1/beta))
}

impl AdaBoostR2 {
    /// AdaBoost.R2 with `n_stages` weak learners.
    pub fn new(n_stages: usize, tree_config: TreeConfig) -> AdaBoostR2 {
        AdaBoostR2 {
            n_stages: n_stages.max(1),
            tree_config,
            stages: Vec::new(),
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<AdaBoostR2> {
        let n_stages = codec::read_usize(r)?;
        let tree_config = tree::decode_config(r)?;
        let count = codec::read_usize(r)?;
        if count > r.remaining() {
            return None;
        }
        let stages = (0..count)
            .map(|_| {
                let t = DecisionTree::decode_state(r)?;
                let vote = r.f64_le()?;
                Some((t, vote))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(AdaBoostR2 {
            n_stages,
            tree_config,
            stages,
        })
    }
}

impl Default for AdaBoostR2 {
    fn default() -> AdaBoostR2 {
        AdaBoostR2::new(
            50,
            TreeConfig {
                max_depth: 4,
                min_samples_split: 4,
                min_samples_leaf: 2,
            },
        )
    }
}

impl Regressor for AdaBoostR2 {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let n = y.len();
        self.stages.clear();
        let mut w = vec![1.0 / n as f64; n];
        for _ in 0..self.n_stages {
            let mut tree = DecisionTree::new(self.tree_config);
            tree.fit_weighted(x, y, &w)?;
            let pred: Vec<f64> = (0..n).map(|i| tree.predict_row(x.row(i))).collect();
            let max_err = pred
                .iter()
                .zip(y)
                .map(|(p, t)| (p - t).abs())
                .fold(0.0f64, f64::max);
            if max_err < 1e-12 {
                // Perfect learner: give it a large vote and stop.
                self.stages.push((tree, 10.0));
                break;
            }
            // Linear loss.
            let losses: Vec<f64> = pred
                .iter()
                .zip(y)
                .map(|(p, t)| (p - t).abs() / max_err)
                .collect();
            let avg_loss: f64 = losses.iter().zip(&w).map(|(l, wi)| l * wi).sum();
            if avg_loss >= 0.5 {
                break; // weak learner no better than chance
            }
            let beta = avg_loss / (1.0 - avg_loss);
            for (wi, li) in w.iter_mut().zip(&losses) {
                *wi *= beta.powf(1.0 - li);
            }
            let sum: f64 = w.iter().sum();
            for wi in w.iter_mut() {
                *wi /= sum;
            }
            self.stages.push((tree, (1.0 / beta).ln()));
        }
        if self.stages.is_empty() {
            // Fall back to a single unweighted tree.
            let mut tree = DecisionTree::new(self.tree_config);
            tree.fit(x, y)?;
            self.stages.push((tree, 1.0));
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.stages.is_empty(), "model must be fitted first");
        // Weighted median of the stage predictions.
        let mut preds: Vec<(f64, f64)> = self
            .stages
            .iter()
            .map(|(t, a)| (t.predict_row(row), *a))
            .collect();
        preds.sort_by(|a, b| afp_ord::asc(a.0, b.0));
        let total: f64 = preds.iter().map(|(_, a)| a).sum();
        let mut acc = 0.0;
        for (p, a) in &preds {
            acc += a;
            if acc >= 0.5 * total {
                return *p;
            }
        }
        preds.last().map(|(p, _)| *p).unwrap_or(0.0)
    }

    fn name(&self) -> &'static str {
        "adaboost.r2"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.n_stages);
        tree::encode_config(&mut payload, &self.tree_config);
        codec::put_usize(&mut payload, self.stages.len());
        for (t, vote) in &self.stages {
            t.encode_state(&mut payload);
            put_f64(&mut payload, *vote);
        }
        Some(ModelState {
            tag: codec::TAG_ADA,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn wave(n: usize) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut s = 13u64;
        for _ in 0..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((s >> 24) & 0xFFF) as f64 / 4095.0 * 6.0;
            rows.push(vec![a]);
            ys.push(a.sin() * 3.0 + 0.5 * a);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), ys)
    }

    #[test]
    fn gradient_boosting_fits_smooth_nonlinearity() {
        let (x, y) = wave(300);
        let mut g = GradientBoosting::default();
        g.fit(&x, &y).unwrap();
        assert!(r2(&g.predict(&x), &y) > 0.97);
    }

    #[test]
    fn more_stages_fit_better_in_sample() {
        let (x, y) = wave(200);
        let mut small = GradientBoosting::new(10, 0.1, Default::default());
        let mut large = GradientBoosting::new(150, 0.1, Default::default());
        small.fit(&x, &y).unwrap();
        large.fit(&x, &y).unwrap();
        assert!(r2(&large.predict(&x), &y) > r2(&small.predict(&x), &y));
    }

    #[test]
    fn adaboost_fits_reasonably() {
        let (x, y) = wave(300);
        let mut a = AdaBoostR2::default();
        a.fit(&x, &y).unwrap();
        assert!(r2(&a.predict(&x), &y) > 0.9);
    }

    #[test]
    fn adaboost_handles_perfect_learner() {
        // A step function a depth-4 tree can represent exactly.
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let y = [1.0, 1.0, 4.0, 4.0];
        let mut a = AdaBoostR2::default();
        a.fit(&x, &y).unwrap();
        assert_eq!(a.predict_row(&[0.5]), 1.0);
        assert_eq!(a.predict_row(&[10.5]), 4.0);
    }

    #[test]
    fn boosting_is_deterministic() {
        let (x, y) = wave(120);
        let mut g1 = GradientBoosting::default();
        let mut g2 = GradientBoosting::default();
        g1.fit(&x, &y).unwrap();
        g2.fit(&x, &y).unwrap();
        assert_eq!(g1.predict(&x), g2.predict(&x));
    }
}

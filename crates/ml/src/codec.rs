//! Versioned binary persistence for fitted regressors.
//!
//! Every model of the zoo can serialize its fitted state to a
//! `(tag, payload)` pair — [`ModelState`] — and be reconstructed exactly
//! by [`restore`]. The encoding reuses the `afp-store` wire primitives
//! (LEB128 varints, raw-bits little-endian `f64`), so round trips are
//! **bit-exact**: a restored model produces byte-identical predictions,
//! including NaN payloads and signed zeros. Decoders are bounds-checked
//! and return `None`/`Err` on truncated or corrupted input — they never
//! panic — which is what lets `.afpm` model files be loaded from
//! untrusted disks.
//!
//! The payload layout is private to each model module (the fitted state
//! fields are private there); this module owns the tag registry, the
//! shared vector/scaler helpers and the [`restore`] dispatch.

use afp_store::bytes::{put_f64, put_uvarint};
use afp_store::ByteReader;

use crate::preprocess::Standardizer;
use crate::Regressor;

/// Codec tag for [`crate::linear::SingleFeature`] (ML1–ML3).
pub const TAG_SINGLE: u8 = 1;
/// Codec tag for [`crate::linear::Ridge`] (ML14).
pub const TAG_RIDGE: u8 = 2;
/// Codec tag for [`crate::linear::BayesianRidge`] (ML11).
pub const TAG_BAYES: u8 = 3;
/// Codec tag for [`crate::linear::Lasso`] (ML12).
pub const TAG_LASSO: u8 = 4;
/// Codec tag for [`crate::linear::LeastAngle`] (ML13).
pub const TAG_LARS: u8 = 5;
/// Codec tag for [`crate::linear::SgdRegressor`] (ML15).
pub const TAG_SGD: u8 = 6;
/// Codec tag for [`crate::pls::PlsRegression`] (ML4).
pub const TAG_PLS: u8 = 7;
/// Codec tag for [`crate::forest::RandomForest`] (ML5).
pub const TAG_FOREST: u8 = 8;
/// Codec tag for [`crate::boost::GradientBoosting`] (ML6).
pub const TAG_BOOST: u8 = 9;
/// Codec tag for [`crate::boost::AdaBoostR2`] (ML7).
pub const TAG_ADA: u8 = 10;
/// Codec tag for [`crate::kernel::GaussianProcess`] (ML8).
pub const TAG_GP: u8 = 11;
/// Codec tag for [`crate::symbolic::SymbolicRegression`] (ML9).
pub const TAG_SYMBOLIC: u8 = 12;
/// Codec tag for [`crate::kernel::KernelRidge`] (ML10).
pub const TAG_KRR: u8 = 13;
/// Codec tag for [`crate::neighbors::KNearest`] (ML16).
pub const TAG_KNN: u8 = 14;
/// Codec tag for [`crate::mlp::Mlp`] (ML17).
pub const TAG_MLP: u8 = 15;
/// Codec tag for [`crate::tree::DecisionTree`] (ML18).
pub const TAG_TREE: u8 = 16;

/// The serialized form of one fitted model: a type tag plus the model's
/// private payload bytes. Produced by [`Regressor::save_state`] and
/// consumed by [`restore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelState {
    /// Type tag (one of the `TAG_*` constants).
    pub tag: u8,
    /// Model-private payload bytes.
    pub payload: Vec<u8>,
}

/// Error restoring a serialized model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload was truncated or structurally invalid.
    Truncated,
    /// The tag byte names no known model type (newer writer, or garbage).
    UnknownTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "model payload truncated or corrupt"),
            CodecError::UnknownTag(t) => write!(f, "unknown model tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Reconstruct a model from its `(tag, payload)` pair.
///
/// The payload must be consumed exactly: trailing garbage is rejected as
/// corruption, the same as truncation.
///
/// # Errors
///
/// [`CodecError::UnknownTag`] for an unregistered tag,
/// [`CodecError::Truncated`] for any malformed payload. Never panics.
pub fn restore(tag: u8, payload: &[u8]) -> Result<Box<dyn Regressor>, CodecError> {
    let mut r = ByteReader::new(payload);
    let model: Option<Box<dyn Regressor>> = match tag {
        TAG_SINGLE => crate::linear::SingleFeature::decode_state(&mut r).map(boxed),
        TAG_RIDGE => crate::linear::Ridge::decode_state(&mut r).map(boxed),
        TAG_BAYES => crate::linear::BayesianRidge::decode_state(&mut r).map(boxed),
        TAG_LASSO => crate::linear::Lasso::decode_state(&mut r).map(boxed),
        TAG_LARS => crate::linear::LeastAngle::decode_state(&mut r).map(boxed),
        TAG_SGD => crate::linear::SgdRegressor::decode_state(&mut r).map(boxed),
        TAG_PLS => crate::pls::PlsRegression::decode_state(&mut r).map(boxed),
        TAG_FOREST => crate::forest::RandomForest::decode_state(&mut r).map(boxed),
        TAG_BOOST => crate::boost::GradientBoosting::decode_state(&mut r).map(boxed),
        TAG_ADA => crate::boost::AdaBoostR2::decode_state(&mut r).map(boxed),
        TAG_GP => crate::kernel::GaussianProcess::decode_state(&mut r).map(boxed),
        TAG_SYMBOLIC => crate::symbolic::SymbolicRegression::decode_state(&mut r).map(boxed),
        TAG_KRR => crate::kernel::KernelRidge::decode_state(&mut r).map(boxed),
        TAG_KNN => crate::neighbors::KNearest::decode_state(&mut r).map(boxed),
        TAG_MLP => crate::mlp::Mlp::decode_state(&mut r).map(boxed),
        TAG_TREE => crate::tree::DecisionTree::decode_state(&mut r).map(boxed),
        other => return Err(CodecError::UnknownTag(other)),
    };
    match model {
        Some(m) if r.is_empty() => Ok(m),
        _ => Err(CodecError::Truncated),
    }
}

fn boxed<T: Regressor + 'static>(m: T) -> Box<dyn Regressor> {
    Box::new(m)
}

// ---- shared payload helpers (used by the model modules) ----

/// Append a length-prefixed `f64` vector.
pub(crate) fn put_vec(out: &mut Vec<u8>, v: &[f64]) {
    put_uvarint(out, v.len() as u64);
    for &x in v {
        put_f64(out, x);
    }
}

/// Read a length-prefixed `f64` vector; bounds the declared length by the
/// remaining bytes so corrupt lengths cannot trigger huge allocations.
pub(crate) fn read_vec(r: &mut ByteReader) -> Option<Vec<f64>> {
    let n = r.uvarint()? as usize;
    if n.checked_mul(8)? > r.remaining() {
        return None;
    }
    (0..n).map(|_| r.f64_le()).collect()
}

/// Append a length-prefixed list of `f64` rows.
pub(crate) fn put_rows(out: &mut Vec<u8>, rows: &[Vec<f64>]) {
    put_uvarint(out, rows.len() as u64);
    for row in rows {
        put_vec(out, row);
    }
}

/// Read a length-prefixed list of `f64` rows.
pub(crate) fn read_rows(r: &mut ByteReader) -> Option<Vec<Vec<f64>>> {
    let n = r.uvarint()? as usize;
    // Each row costs at least one length byte.
    if n > r.remaining() {
        return None;
    }
    (0..n).map(|_| read_vec(r)).collect()
}

/// Append an optional fitted standardizer (flag byte + means + stds).
pub(crate) fn put_scaler(out: &mut Vec<u8>, scaler: &Option<Standardizer>) {
    match scaler {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_vec(out, s.means());
            put_vec(out, s.stds());
        }
    }
}

/// Read an optional standardizer written by [`put_scaler`].
pub(crate) fn read_scaler(r: &mut ByteReader) -> Option<Option<Standardizer>> {
    match r.u8()? {
        0 => Some(None),
        1 => {
            let means = read_vec(r)?;
            let stds = read_vec(r)?;
            if means.len() != stds.len() {
                return None;
            }
            Some(Some(Standardizer::from_parts(means, stds)))
        }
        _ => None,
    }
}

/// Append a `usize` as a varint.
pub(crate) fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_uvarint(out, v as u64);
}

/// Read a varint back into `usize`.
pub(crate) fn read_usize(r: &mut ByteReader) -> Option<usize> {
    let v = r.uvarint()?;
    usize::try_from(v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build_model, MlModelId};
    use crate::Matrix;

    fn training_set() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut s = 99u64;
        for _ in 0..48 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((s >> 20) & 0x3FF) as f64 / 1023.0;
            let b = ((s >> 34) & 0x3FF) as f64 / 1023.0;
            let c = ((s >> 48) & 0x3FF) as f64 / 1023.0;
            rows.push(vec![a, b, c, a * b]);
            ys.push(3.0 * a - b + 2.0 * c * c + 0.25);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), ys)
    }

    #[test]
    fn every_zoo_model_round_trips_bit_exactly() {
        let (x, y) = training_set();
        let columns = crate::zoo::AsicColumns {
            power: 0,
            latency: 1,
            area: 2,
        };
        for id in MlModelId::ALL {
            let mut model = build_model(id, columns);
            model
                .fit(&x, &y)
                .unwrap_or_else(|e| panic!("{id:?} fit: {e}"));
            let state = model
                .save_state()
                .unwrap_or_else(|| panic!("{id:?} must support persistence"));
            let restored = restore(state.tag, &state.payload)
                .unwrap_or_else(|e| panic!("{id:?} restore: {e}"));
            for r in 0..x.rows() {
                let a = model.predict_row(x.row(r));
                let b = restored.predict_row(x.row(r));
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{id:?} row {r}: {a} vs {b} after round trip"
                );
            }
        }
    }

    #[test]
    fn truncated_payloads_error_not_panic() {
        let (x, y) = training_set();
        for id in MlModelId::ALL {
            let columns = crate::zoo::AsicColumns {
                power: 0,
                latency: 1,
                area: 2,
            };
            let mut model = build_model(id, columns);
            model.fit(&x, &y).unwrap();
            let state = model.save_state().unwrap();
            for cut in 0..state.payload.len().min(64) {
                let got = restore(state.tag, &state.payload[..cut]);
                assert!(got.is_err(), "{id:?} accepted a {cut}-byte prefix");
            }
            // Trailing garbage is corruption too.
            let mut long = state.payload.clone();
            long.push(0xAB);
            assert!(
                restore(state.tag, &long).is_err(),
                "{id:?} accepted trailing bytes"
            );
        }
    }

    #[test]
    fn unknown_tag_is_a_loud_error() {
        match restore(0, &[]) {
            Err(CodecError::UnknownTag(0)) => {}
            other => panic!("expected UnknownTag(0), got {:?}", other.err()),
        }
        match restore(200, &[1, 2, 3]) {
            Err(CodecError::UnknownTag(200)) => {}
            other => panic!("expected UnknownTag(200), got {:?}", other.err()),
        }
    }
}

//! Partial-least-squares regression (PLS1, NIPALS) — ML4.

use afp_store::bytes::put_f64;
use afp_store::ByteReader;

use crate::codec::{self, ModelState};
use crate::linalg::dot;
use crate::preprocess::{mean, Standardizer};
use crate::{check_xy, Matrix, MlError, Regressor};

/// PLS1 regression via the NIPALS algorithm.
///
/// Extracts `components` latent directions that maximize covariance with
/// the target, then regresses on the scores — robust to collinear feature
/// sets like ours (gate counts correlate heavily with area and power).
///
/// # Example
///
/// ```
/// use afp_ml::pls::PlsRegression;
/// use afp_ml::{Matrix, Regressor};
///
/// // Two perfectly collinear features.
/// let x = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0], &[4.0, 8.0]]);
/// let y = [3.0, 6.0, 9.0, 12.0];
/// let mut m = PlsRegression::new(1);
/// m.fit(&x, &y)?;
/// assert!((m.predict_row(&[5.0, 10.0]) - 15.0).abs() < 1e-6);
/// # Ok::<(), afp_ml::MlError>(())
/// ```
#[derive(Clone, Debug)]
pub struct PlsRegression {
    components: usize,
    scaler: Option<Standardizer>,
    // Per component: weight vector w, loading p, regression coefficient q.
    w: Vec<Vec<f64>>,
    p: Vec<Vec<f64>>,
    q: Vec<f64>,
    y_mean: f64,
}

impl PlsRegression {
    /// PLS with the given number of latent components.
    pub fn new(components: usize) -> PlsRegression {
        PlsRegression {
            components: components.max(1),
            scaler: None,
            w: Vec::new(),
            p: Vec::new(),
            q: Vec::new(),
            y_mean: 0.0,
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<PlsRegression> {
        let m = PlsRegression {
            components: codec::read_usize(r)?,
            scaler: codec::read_scaler(r)?,
            w: codec::read_rows(r)?,
            p: codec::read_rows(r)?,
            q: codec::read_vec(r)?,
            y_mean: r.f64_le()?,
        };
        if m.w.len() != m.p.len() || m.w.len() != m.q.len() {
            return None;
        }
        Some(m)
    }
}

impl Default for PlsRegression {
    fn default() -> PlsRegression {
        PlsRegression::new(4)
    }
}

impl Regressor for PlsRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        let n = z.rows();
        let pdim = z.cols();
        self.y_mean = mean(y);
        let mut e: Vec<Vec<f64>> = (0..n).map(|r| z.row(r).to_vec()).collect();
        let mut f: Vec<f64> = y.iter().map(|v| v - self.y_mean).collect();
        self.w.clear();
        self.p.clear();
        self.q.clear();
        for _ in 0..self.components.min(pdim) {
            // w = Eᵀ f / ||Eᵀ f||
            let mut w = vec![0.0; pdim];
            for (row, fi) in e.iter().zip(&f) {
                for (wj, xj) in w.iter_mut().zip(row) {
                    *wj += xj * fi;
                }
            }
            let norm = dot(&w, &w).sqrt();
            if norm < 1e-12 {
                break; // nothing left to explain
            }
            for wj in w.iter_mut() {
                *wj /= norm;
            }
            // Scores t = E w.
            let t: Vec<f64> = e.iter().map(|row| dot(row, &w)).collect();
            let tt = dot(&t, &t);
            if tt < 1e-12 {
                break;
            }
            // Loadings p = Eᵀ t / tᵀt, q = fᵀ t / tᵀt.
            let mut pv = vec![0.0; pdim];
            for (row, ti) in e.iter().zip(&t) {
                for (pj, xj) in pv.iter_mut().zip(row) {
                    *pj += xj * ti;
                }
            }
            for pj in pv.iter_mut() {
                *pj /= tt;
            }
            let q = dot(&f, &t) / tt;
            // Deflate.
            for (row, ti) in e.iter_mut().zip(&t) {
                for (xj, pj) in row.iter_mut().zip(&pv) {
                    *xj -= ti * pj;
                }
            }
            for (fi, ti) in f.iter_mut().zip(&t) {
                *fi -= q * ti;
            }
            self.w.push(w);
            self.p.push(pv);
            self.q.push(q);
        }
        self.scaler = Some(scaler);
        if self.w.is_empty() {
            // Degenerate input (constant y): predict the mean.
            Ok(())
        } else {
            Ok(())
        }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("model must be fitted first");
        let mut e = scaler.transform_row(row);
        let mut out = self.y_mean;
        for k in 0..self.w.len() {
            let t = dot(&e, &self.w[k]);
            out += self.q[k] * t;
            for (xj, pj) in e.iter_mut().zip(&self.p[k]) {
                *xj -= t * pj;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "pls regression"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.components);
        codec::put_scaler(&mut payload, &self.scaler);
        codec::put_rows(&mut payload, &self.w);
        codec::put_rows(&mut payload, &self.p);
        codec::put_vec(&mut payload, &self.q);
        put_f64(&mut payload, self.y_mean);
        Some(ModelState {
            tag: codec::TAG_PLS,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    #[test]
    fn handles_collinear_features() {
        // x1 = 2*x0 exactly; OLS normal equations would be singular.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let a = i as f64 / 10.0;
                vec![a, 2.0 * a]
            })
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 4.0 * r[0] + 1.0).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut m = PlsRegression::new(2);
        m.fit(&x, &ys).unwrap();
        assert!(r2(&m.predict(&x), &ys) > 0.9999);
    }

    #[test]
    fn more_components_explain_more() {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut s = 3u64;
        for _ in 0..120 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((s >> 30) & 0xFF) as f64 / 255.0;
            let b = ((s >> 40) & 0xFF) as f64 / 255.0;
            let c = ((s >> 50) & 0xFF) as f64 / 255.0;
            rows.push(vec![a, b, c]);
            ys.push(a - 2.0 * b + 0.5 * c);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut one = PlsRegression::new(1);
        let mut three = PlsRegression::new(3);
        one.fit(&x, &ys).unwrap();
        three.fit(&x, &ys).unwrap();
        assert!(r2(&three.predict(&x), &ys) >= r2(&one.predict(&x), &ys));
        assert!(r2(&three.predict(&x), &ys) > 0.999);
    }

    #[test]
    fn constant_target_predicts_mean() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = [4.0, 4.0, 4.0];
        let mut m = PlsRegression::new(2);
        m.fit(&x, &y).unwrap();
        assert!((m.predict_row(&[9.0]) - 4.0).abs() < 1e-9);
    }
}

//! CART regression tree — ML18, and the weak learner of the ensemble
//! models.

use afp_store::bytes::put_f64;
use afp_store::ByteReader;

use crate::codec::{self, ModelState};
use crate::{check_xy, Matrix, MlError, Regressor};

/// Tree growth configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// CART regression tree (variance-reduction splits) — ML18.
///
/// # Example
///
/// ```
/// use afp_ml::tree::{DecisionTree, TreeConfig};
/// use afp_ml::{Matrix, Regressor};
///
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
/// let y = [1.0, 1.0, 9.0, 9.0];
/// let mut t = DecisionTree::new(TreeConfig::default());
/// t.fit(&x, &y)?;
/// assert_eq!(t.predict_row(&[0.5]), 1.0);
/// assert_eq!(t.predict_row(&[10.5]), 9.0);
/// # Ok::<(), afp_ml::MlError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DecisionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
    /// Feature subset to consider per split (None = all); used by random
    /// forests. Indices are sampled per split with this many candidates.
    pub(crate) features_per_split: Option<usize>,
    pub(crate) seed: u64,
}

impl DecisionTree {
    /// New tree with the given growth limits.
    pub fn new(config: TreeConfig) -> DecisionTree {
        DecisionTree {
            config,
            nodes: Vec::new(),
            features_per_split: None,
            seed: 0x7EE5,
        }
    }

    /// Fit with explicit per-sample weights (used by AdaBoost.R2).
    ///
    /// # Errors
    ///
    /// Same contract as [`Regressor::fit`].
    pub fn fit_weighted(&mut self, x: &Matrix, y: &[f64], w: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        if w.len() != y.len() {
            return Err(MlError::ShapeMismatch {
                rows: w.len(),
                targets: y.len(),
            });
        }
        self.nodes.clear();
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut rng = self.seed | 1;
        self.grow(x, y, w, idx, 0, &mut rng);
        Ok(())
    }

    fn grow(
        &mut self,
        x: &Matrix,
        y: &[f64],
        w: &[f64],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut u64,
    ) -> usize {
        let node_value = weighted_mean(&idx, y, w);
        let make_leaf = idx.len() < self.config.min_samples_split
            || depth >= self.config.max_depth
            || variance(&idx, y, w) < 1e-12;
        if make_leaf {
            self.nodes.push(Node::Leaf(node_value));
            return self.nodes.len() - 1;
        }
        let p = x.cols();
        let candidates: Vec<usize> = match self.features_per_split {
            None => (0..p).collect(),
            Some(k) => {
                let mut feats: Vec<usize> = (0..p).collect();
                // Deterministic partial shuffle.
                for i in 0..k.min(p) {
                    *rng ^= *rng >> 12;
                    *rng ^= *rng << 25;
                    *rng ^= *rng >> 27;
                    let j = i + (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) as usize) % (p - i);
                    feats.swap(i, j);
                }
                feats.truncate(k.min(p));
                feats
            }
        };
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for &f in &candidates {
            if let Some((thr, score)) = best_split(x, y, w, &idx, f, self.config.min_samples_leaf) {
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((f, thr, score));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            self.nodes.push(Node::Leaf(node_value));
            return self.nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| x.get(i, feature) <= threshold);
        // Reserve a slot, grow children, then fill it.
        self.nodes.push(Node::Leaf(node_value));
        let slot = self.nodes.len() - 1;
        let left = self.grow(x, y, w, li, depth + 1, rng);
        let right = self.grow(x, y, w, ri, depth + 1, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Number of nodes in the grown tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Append the fitted state (used standalone and by the ensembles).
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        encode_config(out, &self.config);
        match self.features_per_split {
            None => out.push(0),
            Some(k) => {
                out.push(1);
                codec::put_usize(out, k);
            }
        }
        out.extend_from_slice(&self.seed.to_le_bytes());
        codec::put_usize(out, self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf(v) => {
                    out.push(0);
                    put_f64(out, *v);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    out.push(1);
                    codec::put_usize(out, *feature);
                    put_f64(out, *threshold);
                    codec::put_usize(out, *left);
                    codec::put_usize(out, *right);
                }
            }
        }
    }

    /// Decode a tree written by [`DecisionTree::encode_state`]; child
    /// indices are validated so a corrupt payload can never panic later
    /// prediction.
    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<DecisionTree> {
        let config = decode_config(r)?;
        let features_per_split = match r.u8()? {
            0 => None,
            1 => Some(codec::read_usize(r)?),
            _ => return None,
        };
        let seed = r.u64_le()?;
        let count = codec::read_usize(r)?;
        // Every node costs at least two bytes on the wire.
        if count > r.remaining() {
            return None;
        }
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            nodes.push(match r.u8()? {
                0 => Node::Leaf(r.f64_le()?),
                1 => {
                    let feature = codec::read_usize(r)?;
                    let threshold = r.f64_le()?;
                    let left = codec::read_usize(r)?;
                    let right = codec::read_usize(r)?;
                    if left >= count || right >= count {
                        return None;
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    }
                }
                _ => return None,
            });
        }
        Some(DecisionTree {
            config,
            nodes,
            features_per_split,
            seed,
        })
    }
}

pub(crate) fn encode_config(out: &mut Vec<u8>, config: &TreeConfig) {
    codec::put_usize(out, config.max_depth);
    codec::put_usize(out, config.min_samples_split);
    codec::put_usize(out, config.min_samples_leaf);
}

pub(crate) fn decode_config(r: &mut ByteReader) -> Option<TreeConfig> {
    Some(TreeConfig {
        max_depth: codec::read_usize(r)?,
        min_samples_split: codec::read_usize(r)?,
        min_samples_leaf: codec::read_usize(r)?,
    })
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        let w = vec![1.0; y.len()];
        self.fit_weighted(x, y, &w)
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "model must be fitted first");
        // Root is always the first reserved slot.
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "decision tree"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        self.encode_state(&mut payload);
        Some(ModelState {
            tag: codec::TAG_TREE,
            payload,
        })
    }
}

fn weighted_mean(idx: &[usize], y: &[f64], w: &[f64]) -> f64 {
    let mut sw = 0.0;
    let mut s = 0.0;
    for &i in idx {
        sw += w[i];
        s += w[i] * y[i];
    }
    if sw <= 0.0 {
        0.0
    } else {
        s / sw
    }
}

fn variance(idx: &[usize], y: &[f64], w: &[f64]) -> f64 {
    let m = weighted_mean(idx, y, w);
    let mut sw = 0.0;
    let mut s = 0.0;
    for &i in idx {
        sw += w[i];
        s += w[i] * (y[i] - m) * (y[i] - m);
    }
    if sw <= 0.0 {
        0.0
    } else {
        s / sw
    }
}

/// Best threshold on one feature by weighted SSE; returns (threshold,
/// total child SSE) or None when no legal split exists.
fn best_split(
    x: &Matrix,
    y: &[f64],
    w: &[f64],
    idx: &[usize],
    feature: usize,
    min_leaf: usize,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = idx.to_vec();
    order.sort_by(|&a, &b| afp_ord::asc(x.get(a, feature), x.get(b, feature)));
    let n = order.len();
    if n < 2 * min_leaf {
        return None;
    }
    // Prefix sums of w, w*y, w*y².
    let mut pw = vec![0.0; n + 1];
    let mut py = vec![0.0; n + 1];
    let mut py2 = vec![0.0; n + 1];
    for (k, &i) in order.iter().enumerate() {
        pw[k + 1] = pw[k] + w[i];
        py[k + 1] = py[k] + w[i] * y[i];
        py2[k + 1] = py2[k] + w[i] * y[i] * y[i];
    }
    let total_w = pw[n];
    let mut best: Option<(f64, f64)> = None;
    for k in min_leaf..=(n - min_leaf) {
        let xa = x.get(order[k - 1], feature);
        let xb = x.get(order[k], feature);
        if xa == xb {
            continue; // cannot split between equal values
        }
        let (lw, ly, ly2) = (pw[k], py[k], py2[k]);
        let (rw, ry, ry2) = (total_w - lw, py[n] - ly, py2[n] - ly2);
        if lw <= 0.0 || rw <= 0.0 {
            continue;
        }
        let sse = (ly2 - ly * ly / lw) + (ry2 - ry * ry / rw);
        let thr = 0.5 * (xa + xb);
        if best.is_none_or(|(_, s)| sse < s) {
            best = Some((thr, sse));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    #[test]
    fn fits_step_function_exactly() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[10.0], &[11.0], &[12.0]]);
        let y = [1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let mut t = DecisionTree::new(TreeConfig {
            min_samples_leaf: 1,
            min_samples_split: 2,
            ..TreeConfig::default()
        });
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&x), y.to_vec());
    }

    #[test]
    fn depth_zero_is_the_mean() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let y = [3.0, 6.0, 9.0];
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        });
        t.fit(&x, &y).unwrap();
        assert_eq!(t.node_count(), 1);
        assert!((t.predict_row(&[5.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = [0.0, 1.0, 2.0, 3.0];
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 10,
            min_samples_split: 2,
            min_samples_leaf: 2,
        });
        t.fit(&x, &y).unwrap();
        // With min_leaf=2 only one split (2|2) is possible.
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn weighted_fit_biases_toward_heavy_samples() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let y = [0.0, 10.0];
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        });
        t.fit_weighted(&x, &y, &[9.0, 1.0]).unwrap();
        assert!((t.predict_row(&[0.0]) - 1.0).abs() < 1e-12); // 10*0.1
    }

    #[test]
    fn learns_nonlinear_target_well() {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut s = 5u64;
        for _ in 0..300 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((s >> 33) & 0xFF) as f64 / 255.0;
            let b = ((s >> 41) & 0xFF) as f64 / 255.0;
            rows.push(vec![a, b]);
            ys.push(if a > 0.5 { a * b } else { -b });
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &ys).unwrap();
        assert!(r2(&t.predict(&x), &ys) > 0.95);
    }
}

//! Linear-in-parameters regressors: single-feature ASIC regression
//! (ML1–ML3), ridge (ML14), Bayesian ridge (ML11), coordinate-descent
//! Lasso (ML12), least-angle/forward-stepwise regression (ML13) and an SGD
//! regressor (ML15).
//!
//! All models standardize features internally and fit an intercept.

use afp_store::bytes::put_f64;
use afp_store::ByteReader;

use crate::codec::{self, ModelState};
use crate::linalg::{chol_solve, cholesky, dot, inv_diag_from_chol};
use crate::preprocess::{mean, Standardizer};
use crate::{check_xy, Matrix, MlError, Regressor};

/// Shared fitted state of the linear family: standardizer + weights +
/// intercept in standardized space.
#[derive(Clone, Debug, Default)]
struct LinearState {
    scaler: Option<Standardizer>,
    weights: Vec<f64>,
    intercept: f64,
}

impl LinearState {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("model must be fitted first");
        let z = scaler.transform_row(row);
        dot(&z, &self.weights) + self.intercept
    }

    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_scaler(out, &self.scaler);
        codec::put_vec(out, &self.weights);
        put_f64(out, self.intercept);
    }

    fn decode(r: &mut ByteReader) -> Option<LinearState> {
        Some(LinearState {
            scaler: codec::read_scaler(r)?,
            weights: codec::read_vec(r)?,
            intercept: r.f64_le()?,
        })
    }
}

/// Ordinary/simple linear regression on **one designated feature column** —
/// the paper's ML1–ML3 ("Regression w.r.t. ASIC-AC power/latency/area").
///
/// # Example
///
/// ```
/// use afp_ml::linear::SingleFeature;
/// use afp_ml::{Matrix, Regressor};
///
/// // Column 1 carries the signal.
/// let x = Matrix::from_rows(&[&[9.0, 1.0], &[9.0, 2.0], &[9.0, 3.0]]);
/// let mut m = SingleFeature::new(1);
/// m.fit(&x, &[2.0, 4.0, 6.0])?;
/// assert!((m.predict_row(&[0.0, 4.0]) - 8.0).abs() < 1e-9);
/// # Ok::<(), afp_ml::MlError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SingleFeature {
    feature: usize,
    slope: f64,
    intercept: f64,
    fitted: bool,
}

impl SingleFeature {
    /// Regress the target on feature column `feature`.
    pub fn new(feature: usize) -> SingleFeature {
        SingleFeature {
            feature,
            slope: 0.0,
            intercept: 0.0,
            fitted: false,
        }
    }

    /// The designated feature column.
    pub fn feature(&self) -> usize {
        self.feature
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<SingleFeature> {
        Some(SingleFeature {
            feature: codec::read_usize(r)?,
            slope: r.f64_le()?,
            intercept: r.f64_le()?,
            fitted: match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            },
        })
    }
}

impl Regressor for SingleFeature {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let xs = x.col(self.feature);
        let mx = mean(&xs);
        let my = mean(y);
        let mut cov = 0.0;
        let mut var = 0.0;
        for (xi, yi) in xs.iter().zip(y) {
            cov += (xi - mx) * (yi - my);
            var += (xi - mx) * (xi - mx);
        }
        self.slope = if var < 1e-18 { 0.0 } else { cov / var };
        self.intercept = my - self.slope * mx;
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(self.fitted, "model must be fitted first");
        self.slope * row[self.feature] + self.intercept
    }

    fn name(&self) -> &'static str {
        "single-feature regression"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.feature);
        put_f64(&mut payload, self.slope);
        put_f64(&mut payload, self.intercept);
        payload.push(self.fitted as u8);
        Some(ModelState {
            tag: codec::TAG_SINGLE,
            payload,
        })
    }
}

/// Ridge regression (L2-regularized least squares) — ML14, and the
/// building block of several other models.
#[derive(Clone, Debug)]
pub struct Ridge {
    lambda: f64,
    state: LinearState,
}

impl Ridge {
    /// Ridge with regularization strength `lambda` (≥ 0).
    pub fn new(lambda: f64) -> Ridge {
        Ridge {
            lambda,
            state: LinearState::default(),
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<Ridge> {
        Some(Ridge {
            lambda: r.f64_le()?,
            state: LinearState::decode(r)?,
        })
    }
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        let my = mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - my).collect();
        let mut g = z.gram();
        for i in 0..g.cols() {
            let v = g.get(i, i) + self.lambda.max(1e-12) * z.rows() as f64;
            g.set(i, i, v);
        }
        let rhs = z.t_vec(&yc);
        let l = cholesky(&g)?;
        self.state = LinearState {
            scaler: Some(scaler),
            weights: chol_solve(&l, &rhs),
            intercept: my,
        };
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.state.predict_row(row)
    }

    fn name(&self) -> &'static str {
        "ridge regression"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        put_f64(&mut payload, self.lambda);
        self.state.encode(&mut payload);
        Some(ModelState {
            tag: codec::TAG_RIDGE,
            payload,
        })
    }
}

/// Bayesian ridge regression — ML11. Hyperparameters `alpha` (noise
/// precision) and `lambda` (weight precision) are re-estimated by evidence
/// approximation (MacKay updates).
#[derive(Clone, Debug)]
pub struct BayesianRidge {
    iterations: usize,
    state: LinearState,
}

impl BayesianRidge {
    /// Bayesian ridge with the given number of evidence iterations.
    pub fn new(iterations: usize) -> BayesianRidge {
        BayesianRidge {
            iterations,
            state: LinearState::default(),
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<BayesianRidge> {
        Some(BayesianRidge {
            iterations: codec::read_usize(r)?,
            state: LinearState::decode(r)?,
        })
    }
}

impl Default for BayesianRidge {
    fn default() -> BayesianRidge {
        BayesianRidge::new(30)
    }
}

impl Regressor for BayesianRidge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        let my = mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - my).collect();
        let n = z.rows() as f64;
        let p = z.cols();
        let gram = z.gram();
        let rhs = z.t_vec(&yc);
        let var_y = yc.iter().map(|v| v * v).sum::<f64>() / n.max(1.0);
        let mut alpha = 1.0 / var_y.max(1e-9); // noise precision
        let mut lambda = 1.0; // weight precision
        let mut w = vec![0.0; p];
        for _ in 0..self.iterations.max(1) {
            // Posterior mean: (λ/α I + XᵀX)⁻¹ Xᵀy.
            let mut a = gram.clone();
            for i in 0..p {
                a.set(i, i, a.get(i, i) + lambda / alpha);
            }
            let l = cholesky(&a)?;
            w = chol_solve(&l, &rhs);
            // Effective number of parameters γ = p − (λ/α)·tr(A⁻¹).
            let trace_inv: f64 = inv_diag_from_chol(&l).iter().sum();
            let gamma = (p as f64 - (lambda / alpha) * trace_inv).clamp(1e-9, p as f64);
            let resid: f64 = (0..z.rows())
                .map(|r| {
                    let e = yc[r] - dot(z.row(r), &w);
                    e * e
                })
                .sum();
            let w_norm: f64 = w.iter().map(|v| v * v).sum();
            lambda = gamma / w_norm.max(1e-12);
            alpha = (n - gamma).max(1e-9) / resid.max(1e-12);
        }
        self.state = LinearState {
            scaler: Some(scaler),
            weights: w,
            intercept: my,
        };
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.state.predict_row(row)
    }

    fn name(&self) -> &'static str {
        "bayesian ridge"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.iterations);
        self.state.encode(&mut payload);
        Some(ModelState {
            tag: codec::TAG_BAYES,
            payload,
        })
    }
}

/// Coordinate-descent Lasso (L1-regularized least squares) — ML12.
#[derive(Clone, Debug)]
pub struct Lasso {
    lambda: f64,
    iterations: usize,
    state: LinearState,
}

impl Lasso {
    /// Lasso with penalty `lambda` and `iterations` full coordinate sweeps.
    pub fn new(lambda: f64, iterations: usize) -> Lasso {
        Lasso {
            lambda,
            iterations,
            state: LinearState::default(),
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<Lasso> {
        Some(Lasso {
            lambda: r.f64_le()?,
            iterations: codec::read_usize(r)?,
            state: LinearState::decode(r)?,
        })
    }
}

impl Regressor for Lasso {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        let my = mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - my).collect();
        let n = z.rows();
        let p = z.cols();
        let cols: Vec<Vec<f64>> = (0..p).map(|c| z.col(c)).collect();
        let col_sq: Vec<f64> = cols.iter().map(|c| dot(c, c)).collect();
        let mut w = vec![0.0; p];
        let mut resid = yc.clone();
        let lam_n = self.lambda * n as f64;
        for _ in 0..self.iterations.max(1) {
            for j in 0..p {
                if col_sq[j] < 1e-18 {
                    continue;
                }
                // rho = x_jᵀ(resid + w_j x_j)
                let rho = dot(&cols[j], &resid) + w[j] * col_sq[j];
                let new_w = soft_threshold(rho, lam_n) / col_sq[j];
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for (r, xj) in resid.iter_mut().zip(&cols[j]) {
                        *r -= delta * xj;
                    }
                    w[j] = new_w;
                }
            }
        }
        self.state = LinearState {
            scaler: Some(scaler),
            weights: w,
            intercept: my,
        };
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.state.predict_row(row)
    }

    fn name(&self) -> &'static str {
        "lasso (coordinate descent)"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        put_f64(&mut payload, self.lambda);
        codec::put_usize(&mut payload, self.iterations);
        self.state.encode(&mut payload);
        Some(ModelState {
            tag: codec::TAG_LASSO,
            payload,
        })
    }
}

fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

/// Least-angle-style forward selection — ML13.
///
/// Greedily activates the feature most correlated with the residual and
/// refits least squares on the active set (the LARS path evaluated at its
/// step knots), stopping after `max_features` steps or when the residual
/// correlation vanishes.
#[derive(Clone, Debug)]
pub struct LeastAngle {
    max_features: usize,
    state: LinearState,
}

impl LeastAngle {
    /// Forward selection limited to `max_features` active features.
    pub fn new(max_features: usize) -> LeastAngle {
        LeastAngle {
            max_features,
            state: LinearState::default(),
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<LeastAngle> {
        Some(LeastAngle {
            max_features: codec::read_usize(r)?,
            state: LinearState::decode(r)?,
        })
    }
}

impl Regressor for LeastAngle {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        let my = mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - my).collect();
        let p = z.cols();
        let cols: Vec<Vec<f64>> = (0..p).map(|c| z.col(c)).collect();
        let mut active: Vec<usize> = Vec::new();
        let mut w = vec![0.0; p];
        let mut resid = yc.clone();
        for _ in 0..self.max_features.min(p) {
            // Most correlated inactive feature.
            let best = (0..p)
                .filter(|j| !active.contains(j))
                .map(|j| (j, dot(&cols[j], &resid).abs()))
                .max_by(|a, b| afp_ord::for_max(a.1, b.1));
            let Some((j, corr)) = best else { break };
            if corr < 1e-9 {
                break;
            }
            active.push(j);
            // Least-squares refit on the active set (small ridge for
            // stability).
            let k = active.len();
            let mut g = Matrix::zeros(k, k);
            let mut rhs = vec![0.0; k];
            for (ai, &fa) in active.iter().enumerate() {
                rhs[ai] = dot(&cols[fa], &yc);
                for (bi, &fb) in active.iter().enumerate() {
                    g.set(ai, bi, dot(&cols[fa], &cols[fb]));
                }
                g.set(ai, ai, g.get(ai, ai) + 1e-8);
            }
            let l = cholesky(&g)?;
            let wa = chol_solve(&l, &rhs);
            w = vec![0.0; p];
            for (ai, &fa) in active.iter().enumerate() {
                w[fa] = wa[ai];
            }
            // Refresh residual.
            resid = yc.clone();
            for (r_idx, r) in resid.iter_mut().enumerate() {
                *r -= dot(z.row(r_idx), &w);
            }
        }
        self.state = LinearState {
            scaler: Some(scaler),
            weights: w,
            intercept: my,
        };
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.state.predict_row(row)
    }

    fn name(&self) -> &'static str {
        "least-angle regression"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.max_features);
        self.state.encode(&mut payload);
        Some(ModelState {
            tag: codec::TAG_LARS,
            payload,
        })
    }
}

/// Linear regression trained by stochastic gradient descent — ML15.
#[derive(Clone, Debug)]
pub struct SgdRegressor {
    epochs: usize,
    learning_rate: f64,
    l2: f64,
    seed: u64,
    state: LinearState,
}

impl SgdRegressor {
    /// SGD with the given schedule. `l2` is the ridge penalty per sample.
    pub fn new(epochs: usize, learning_rate: f64, l2: f64, seed: u64) -> SgdRegressor {
        SgdRegressor {
            epochs,
            learning_rate,
            l2,
            seed,
            state: LinearState::default(),
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<SgdRegressor> {
        Some(SgdRegressor {
            epochs: codec::read_usize(r)?,
            learning_rate: r.f64_le()?,
            l2: r.f64_le()?,
            seed: r.u64_le()?,
            state: LinearState::decode(r)?,
        })
    }
}

impl Default for SgdRegressor {
    fn default() -> SgdRegressor {
        SgdRegressor::new(200, 0.01, 1e-4, 17)
    }
}

impl Regressor for SgdRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        let my = mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - my).collect();
        let n = z.rows();
        let p = z.cols();
        let mut w = vec![0.0; p];
        let mut b = 0.0f64;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = self.seed | 1;
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for epoch in 0..self.epochs.max(1) {
            // Fisher-Yates shuffle, deterministic.
            for i in (1..n).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let lr = self.learning_rate / (1.0 + 0.01 * epoch as f64);
            for &i in &order {
                let row = z.row(i);
                let err = dot(row, &w) + b - yc[i];
                for (wj, xj) in w.iter_mut().zip(row) {
                    *wj -= lr * (err * xj + self.l2 * *wj);
                }
                b -= lr * err;
            }
        }
        self.state = LinearState {
            scaler: Some(scaler),
            weights: w,
            intercept: my + b,
        };
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.state.predict_row(row)
    }

    fn name(&self) -> &'static str {
        "sgd regressor"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.epochs);
        put_f64(&mut payload, self.learning_rate);
        put_f64(&mut payload, self.l2);
        payload.extend_from_slice(&self.seed.to_le_bytes());
        self.state.encode(&mut payload);
        Some(ModelState {
            tag: codec::TAG_SGD,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    /// y = 3*x0 - 2*x1 + 5 with a nuisance column.
    fn synthetic(n: usize) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut s = 42u64;
        let mut rnd = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 2.0
        };
        for _ in 0..n {
            let (a, b, c) = (rnd(), rnd(), rnd());
            rows.push(vec![a, b, c]);
            ys.push(3.0 * a - 2.0 * b + 5.0);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), ys)
    }

    fn assert_learns(model: &mut dyn Regressor, min_r2: f64) {
        let (x, y) = synthetic(120);
        model.fit(&x, &y).unwrap();
        let pred = model.predict(&x);
        let score = r2(&pred, &y);
        assert!(score > min_r2, "{}: r2 {score}", model.name());
    }

    #[test]
    fn ridge_recovers_linear_function() {
        assert_learns(&mut Ridge::new(1e-6), 0.999);
    }

    #[test]
    fn bayesian_ridge_recovers_linear_function() {
        assert_learns(&mut BayesianRidge::default(), 0.999);
    }

    #[test]
    fn lasso_recovers_and_sparsifies() {
        let (x, y) = synthetic(120);
        let mut m = Lasso::new(0.01, 100);
        m.fit(&x, &y).unwrap();
        assert!(r2(&m.predict(&x), &y) > 0.99);
        // The nuisance weight (col 2) should be (near) zero.
        assert!(
            m.state.weights[2].abs() < 0.05,
            "w2 = {}",
            m.state.weights[2]
        );
    }

    #[test]
    fn least_angle_picks_informative_features_first() {
        let (x, y) = synthetic(120);
        let mut m = LeastAngle::new(2);
        m.fit(&x, &y).unwrap();
        assert!(r2(&m.predict(&x), &y) > 0.999);
        assert!(m.state.weights[2].abs() < 1e-6, "nuisance activated");
    }

    #[test]
    fn sgd_converges_reasonably() {
        assert_learns(&mut SgdRegressor::default(), 0.99);
    }

    #[test]
    fn single_feature_ignores_other_columns() {
        let (x, y) = synthetic(60);
        let mut m = SingleFeature::new(0);
        m.fit(&x, &y).unwrap();
        // Only partially explains y (misses the x1 term).
        let score = r2(&m.predict(&x), &y);
        assert!(score > 0.4 && score < 0.95, "r2 {score}");
    }

    #[test]
    fn fit_rejects_shape_mismatch() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let mut m = Ridge::new(0.1);
        assert!(matches!(
            m.fit(&x, &[1.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn constant_target_yields_constant_prediction() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0], &[2.0, 2.0]]);
        let y = [7.0, 7.0, 7.0];
        for model in [
            &mut Ridge::new(0.1) as &mut dyn Regressor,
            &mut Lasso::new(0.1, 50),
            &mut BayesianRidge::default(),
        ] {
            model.fit(&x, &y).unwrap();
            assert!(
                (model.predict_row(&[2.0, 2.0]) - 7.0).abs() < 0.2,
                "{}",
                model.name()
            );
        }
    }
}

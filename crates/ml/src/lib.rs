//! From-scratch statistical / machine-learning regression models.
//!
//! Implements the 18 light-weight S/ML models of Table I of the
//! ApproxFPGAs paper (DAC 2020) behind one object-safe [`Regressor`]
//! trait, together with the dense linear algebra they need and the
//! evaluation metrics the paper uses — most importantly the **fidelity**
//! metric (Eq. 1–2), which scores how well a model preserves the *ordering*
//! of FPGA parameters between circuit pairs.
//!
//! | Id | Model | Module |
//! |----|-------|--------|
//! | ML1–ML3 | Regression w.r.t. one ASIC parameter | [`linear`] |
//! | ML4 | PLS regression | [`pls`] |
//! | ML5 | Random forest | [`forest`] |
//! | ML6 | Gradient boosting | [`boost`] |
//! | ML7 | AdaBoost.R2 | [`boost`] |
//! | ML8 | Gaussian process | [`kernel`] |
//! | ML9 | Symbolic regression | [`symbolic`] |
//! | ML10 | Kernel ridge | [`kernel`] |
//! | ML11 | Bayesian ridge | [`linear`] |
//! | ML12 | Coordinate-descent Lasso | [`linear`] |
//! | ML13 | Least-angle regression | [`linear`] |
//! | ML14 | Ridge regression | [`linear`] |
//! | ML15 | Stochastic gradient descent | [`linear`] |
//! | ML16 | K-nearest neighbours | [`neighbors`] |
//! | ML17 | Multi-layer perceptron | [`mlp`] |
//! | ML18 | Decision tree | [`tree`] |
//!
//! # Example
//!
//! ```
//! use afp_ml::linear::Ridge;
//! use afp_ml::{Matrix, Regressor};
//!
//! // y = 2*x0 + 1
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
//! let y = [1.0, 3.0, 5.0, 7.0];
//! let mut model = Ridge::new(1e-6);
//! model.fit(&x, &y)?;
//! assert!((model.predict_row(&[4.0]) - 9.0).abs() < 1e-3);
//! # Ok::<(), afp_ml::MlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boost;
pub mod chaos;
pub mod codec;
pub mod forest;
pub mod kernel;
pub mod linalg;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod neighbors;
pub mod pls;
pub mod preprocess;
pub mod symbolic;
pub mod tree;
pub mod tuning;
pub mod zoo;

pub use chaos::{ChaosConfig, ChaosKind, ChaosRegressor};
pub use codec::{restore, CodecError, ModelState};
pub use linalg::Matrix;
pub use zoo::{build_model, MlModelId};

/// Error produced by model fitting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MlError {
    /// The training set is empty or X/y lengths disagree.
    ShapeMismatch {
        /// Rows in X.
        rows: usize,
        /// Length of y.
        targets: usize,
    },
    /// A linear system was numerically singular beyond repair.
    Singular,
    /// The model requires at least this many samples.
    TooFewSamples {
        /// Samples required.
        needed: usize,
        /// Samples provided.
        got: usize,
    },
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::ShapeMismatch { rows, targets } => {
                write!(f, "shape mismatch: {rows} rows vs {targets} targets")
            }
            MlError::Singular => write!(f, "singular linear system"),
            MlError::TooFewSamples { needed, got } => {
                write!(f, "too few samples: needed {needed}, got {got}")
            }
        }
    }
}

impl std::error::Error for MlError {}

/// A trainable regression model mapping feature rows to one target.
///
/// All implementations are deterministic for a fixed configuration (models
/// with internal randomness take an explicit seed).
pub trait Regressor: Send + Sync {
    /// Fit the model on feature matrix `x` (one row per sample) and
    /// targets `y`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] when `x.rows() != y.len()` or the
    /// set is empty, [`MlError::TooFewSamples`] when the model needs more
    /// data, and [`MlError::Singular`] on unrecoverable numerical failure.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError>;

    /// Predict the target for one feature row.
    ///
    /// # Panics
    ///
    /// May panic if called before a successful [`Regressor::fit`] or with a
    /// row of the wrong width.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predict every row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Short human-readable model name.
    fn name(&self) -> &'static str;

    /// Serialize the fitted state for persistence, or `None` when this
    /// model type does not support it (the default).
    ///
    /// Implementations guarantee a **bit-exact** round trip through
    /// [`codec::restore`]: the restored model predicts byte-identical
    /// values for every input row.
    fn save_state(&self) -> Option<codec::ModelState> {
        None
    }
}

pub(crate) fn check_xy(x: &Matrix, y: &[f64]) -> Result<(), MlError> {
    if x.rows() == 0 || x.rows() != y.len() {
        Err(MlError::ShapeMismatch {
            rows: x.rows(),
            targets: y.len(),
        })
    } else {
        Ok(())
    }
}

//! Deterministic fault injection for regressors.
//!
//! Model estimates are untrusted input: a GP, MLP or symbolic regressor
//! trained on a degenerate subset can emit NaN, ±inf or absurd
//! magnitudes. [`ChaosRegressor`] wraps any [`Regressor`] and corrupts a
//! configurable fraction of its predictions with exactly those values,
//! so the downstream pipeline (ranking, pareto peeling, coverage) can be
//! tested against worst-case estimator output.
//!
//! Injection is a pure function of the **feature row and the seed** —
//! never of call order or a mutable RNG — so a wrapped model corrupts
//! the same rows regardless of thread count or evaluation order. That
//! keeps chaos runs bit-identical across `Runtime` configurations, which
//! is precisely the property the numeric-robustness tests pin down.

use crate::{Matrix, MlError, Regressor};

/// Which corrupted value an injection produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosKind {
    /// Rotate through NaN, `+inf`, `-inf` and ±huge, picked per row.
    Mixed,
    /// Always NaN.
    Nan,
    /// Always `+inf`.
    PosInf,
    /// Always `-inf`.
    NegInf,
    /// Always a huge finite magnitude (`±1e300`, sign picked per row).
    Huge,
}

/// Configuration of one injection stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Fraction of predictions corrupted, in `[0, 1]`.
    pub rate: f64,
    /// Seed of the per-row injection hash.
    pub seed: u64,
    /// What a corrupted prediction becomes.
    pub kind: ChaosKind,
}

impl ChaosConfig {
    /// Mixed-kind injection at `rate` with `seed`.
    pub fn new(rate: f64, seed: u64) -> ChaosConfig {
        ChaosConfig {
            rate,
            seed,
            kind: ChaosKind::Mixed,
        }
    }

    /// Corrupt *every* prediction with `kind` (rate 1).
    pub fn always(kind: ChaosKind, seed: u64) -> ChaosConfig {
        ChaosConfig {
            rate: 1.0,
            seed,
            kind,
        }
    }

    /// The same configuration on an independent injection stream: mixes
    /// `stream` into the seed so sibling models corrupt different rows.
    pub fn with_stream(self, stream: u64) -> ChaosConfig {
        ChaosConfig {
            seed: splitmix(self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..self
        }
    }
}

/// A [`Regressor`] wrapper that deterministically corrupts predictions.
pub struct ChaosRegressor {
    inner: Box<dyn Regressor>,
    config: ChaosConfig,
}

impl ChaosRegressor {
    /// Wrap `inner` with the injection `config`.
    pub fn wrap(inner: Box<dyn Regressor>, config: ChaosConfig) -> Box<dyn Regressor> {
        Box::new(ChaosRegressor { inner, config })
    }
}

impl Regressor for ChaosRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        self.inner.fit(x, y)
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let clean = self.inner.predict_row(row);
        let h = hash_row(self.config.seed, row);
        // Top 53 bits -> uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.config.rate {
            return clean;
        }
        match self.config.kind {
            ChaosKind::Nan => f64::NAN,
            ChaosKind::PosInf => f64::INFINITY,
            ChaosKind::NegInf => f64::NEG_INFINITY,
            ChaosKind::Huge => {
                if h & 1 == 0 {
                    1e300
                } else {
                    -1e300
                }
            }
            ChaosKind::Mixed => match h & 3 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => {
                    if h & 4 == 0 {
                        1e300
                    } else {
                        -1e300
                    }
                }
            },
        }
    }

    fn name(&self) -> &'static str {
        "chaos-injected"
    }
}

/// FNV-1a over the seed and the bit patterns of the row, finished with a
/// splitmix avalanche. Depends only on its inputs.
fn hash_row(seed: u64, row: &[f64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ seed;
    for &v in row {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix(h)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_model, MlModelId};

    fn fitted(config: ChaosConfig) -> (Box<dyn Regressor>, Box<dyn Regressor>) {
        let cols = crate::zoo::AsicColumns {
            power: 0,
            latency: 1,
            area: 1,
        };
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 2.0], &[2.0, 3.0], &[3.0, 5.0]]);
        let y = [1.0, 2.0, 3.0, 4.0];
        let mut clean = build_model(MlModelId::Ml4, cols);
        clean.fit(&x, &y).unwrap();
        let mut inner = build_model(MlModelId::Ml4, cols);
        inner.fit(&x, &y).unwrap();
        (clean, ChaosRegressor::wrap(inner, config))
    }

    #[test]
    fn rate_zero_is_a_passthrough() {
        let (clean, chaotic) = fitted(ChaosConfig::new(0.0, 7));
        for row in [[0.5, 1.5], [2.5, 4.0]] {
            assert_eq!(clean.predict_row(&row), chaotic.predict_row(&row));
        }
    }

    #[test]
    fn rate_one_always_corrupts_with_the_configured_kind() {
        let (_, chaotic) = fitted(ChaosConfig::always(ChaosKind::Nan, 7));
        for row in [[0.5, 1.5], [2.5, 4.0], [9.0, 9.0]] {
            assert!(chaotic.predict_row(&row).is_nan());
        }
        let (_, inf) = fitted(ChaosConfig::always(ChaosKind::PosInf, 7));
        assert_eq!(inf.predict_row(&[0.5, 1.5]), f64::INFINITY);
    }

    #[test]
    fn injection_depends_only_on_row_and_seed() {
        let (_, a) = fitted(ChaosConfig::new(0.5, 42));
        let (_, b) = fitted(ChaosConfig::new(0.5, 42));
        // Same rows in different orders: bit-identical predictions.
        let rows = [[0.1, 0.2], [3.0, 4.0], [5.0, 6.0], [0.1, 0.2]];
        let fwd: Vec<u64> = rows.iter().map(|r| a.predict_row(r).to_bits()).collect();
        let rev: Vec<u64> = rows
            .iter()
            .rev()
            .map(|r| b.predict_row(r).to_bits())
            .collect();
        assert_eq!(fwd[0], fwd[3], "same row must corrupt identically");
        for (i, bits) in fwd.iter().enumerate() {
            assert_eq!(*bits, rev[rows.len() - 1 - i]);
        }
    }

    #[test]
    fn mixed_rate_corrupts_roughly_the_requested_fraction() {
        let (_, chaotic) = fitted(ChaosConfig::new(0.3, 1234));
        let n = 2000;
        let bad = (0..n)
            .filter(|&i| {
                let row = [i as f64 * 0.01, i as f64 * 0.02 + 1.0];
                !chaotic.predict_row(&row).is_finite() || chaotic.predict_row(&row).abs() >= 1e299
            })
            .count();
        let frac = bad as f64 / n as f64;
        assert!((0.2..0.4).contains(&frac), "injection rate off: {frac}");
    }

    #[test]
    fn streams_differ_but_are_deterministic() {
        let base = ChaosConfig::new(0.5, 9);
        let s1 = base.with_stream(1);
        let s2 = base.with_stream(2);
        assert_ne!(s1.seed, s2.seed);
        assert_eq!(s1, base.with_stream(1));
    }
}

//! Minimal dense linear algebra: row-major matrices, Cholesky
//! factorization and SPD solves — everything the regressors need, nothing
//! more.

use crate::MlError;

/// Dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use afp_ml::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.transpose().get(0, 1), 3.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` out as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// `selfᵀ · self` (Gram matrix), the workhorse of the normal equations.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for row in 0..self.rows {
            let r = self.row(row);
            for i in 0..self.cols {
                let ri = r[i];
                if ri == 0.0 {
                    continue;
                }
                for (j, &rj) in r.iter().enumerate().skip(i) {
                    g.data[i * self.cols + j] += ri * rj;
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g.data[i * self.cols + j] = g.data[j * self.cols + i];
            }
        }
        g
    }

    /// `selfᵀ · v` for a vector `v` of length `rows()`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows()`.
    pub fn t_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            for (c, o) in out.iter_mut().enumerate() {
                *o += self.get(r, c) * vr;
            }
        }
        out
    }

    /// `self · v` for a vector `v` of length `cols()`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols()`.
    pub fn vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows).map(|r| dot(self.row(r), v)).collect()
    }
}

/// Dot product of equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cholesky factorization of a symmetric positive-definite matrix,
/// returning the lower factor L with `A = L·Lᵀ`.
///
/// # Errors
///
/// Returns [`MlError::Singular`] if the matrix is not positive definite
/// (within a small jitter retry).
pub fn cholesky(a: &Matrix) -> Result<Matrix, MlError> {
    assert_eq!(a.rows(), a.cols(), "cholesky needs a square matrix");
    let n = a.rows();
    for jitter in [0.0, 1e-10, 1e-6] {
        let mut l = Matrix::zeros(n, n);
        let mut ok = true;
        'outer: for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j)
                    + if i == j {
                        jitter * (1.0 + a.get(i, i).abs())
                    } else {
                        0.0
                    };
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        ok = false;
                        break 'outer;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        if ok {
            return Ok(l);
        }
    }
    Err(MlError::Singular)
}

/// Solve `A·x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
///
/// Returns [`MlError::Singular`] when `A` is not SPD.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MlError> {
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let l = cholesky(a)?;
    Ok(chol_solve(&l, b))
}

/// Solve using a precomputed Cholesky factor `L` (`A = L·Lᵀ`).
pub fn chol_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    // Forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for (k, &yk) in y.iter().enumerate().take(i) {
            s -= l.get(i, k) * yk;
        }
        y[i] = s / l.get(i, i);
    }
    // Backward: Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for (k, &xk) in x.iter().enumerate().skip(i + 1) {
            s -= l.get(k, i) * xk;
        }
        x[i] = s / l.get(i, i);
    }
    x
}

/// Diagonal of `A⁻¹` from the Cholesky factor of `A` (used by Bayesian
/// ridge's effective-parameter estimate). O(n³) but `n` = feature count.
pub fn inv_diag_from_chol(l: &Matrix) -> Vec<f64> {
    let n = l.rows();
    let mut diag = vec![0.0; n];
    for j in 0..n {
        // Solve A x = e_j, take x[j].
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let x = chol_solve(l, &e);
        diag[j] = x[j];
    }
    diag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gram_equals_t_times_self() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[0.5, -3.0, 2.0], &[2.0, 0.0, 1.0]]);
        let g1 = a.gram();
        let g2 = a.transpose().matmul(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g1.get(i, j) - g2.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_round_trip() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.5], &[0.6, 1.5, 3.0]]);
        let l = cholesky(&a).unwrap();
        let lt = l.transpose();
        let back = l.matmul(&lt);
        for i in 0..3 {
            for j in 0..3 {
                assert!((back.get(i, j) - a.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let x_true = [2.0, -1.0];
        let b = a.vec_mul(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10 && (x[1] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        // Perfectly singular but jitter rescues it into near-singular: the
        // solve should still succeed *or* report Singular — never panic.
        match solve_spd(&a, &[1.0, 1.0]) {
            Ok(x) => assert!(x.iter().all(|v| v.is_finite())),
            Err(e) => assert_eq!(e, MlError::Singular),
        }
        let neg = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        assert_eq!(cholesky(&neg).unwrap_err(), MlError::Singular);
    }

    #[test]
    fn inv_diag_matches_direct_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.0]]);
        let l = cholesky(&a).unwrap();
        let d = inv_diag_from_chol(&l);
        // inverse of [[2,.3],[.3,1]] = 1/(2-0.09) [[1,-.3],[-.3,2]]
        let det = 2.0 - 0.09;
        assert!((d[0] - 1.0 / det).abs() < 1e-10);
        assert!((d[1] - 2.0 / det).abs() < 1e-10);
    }

    #[test]
    fn t_vec_and_vec_mul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.t_vec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
        assert_eq!(a.vec_mul(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }
}

//! K-nearest-neighbour regression — ML16.

use afp_store::ByteReader;

use crate::codec::{self, ModelState};
use crate::preprocess::Standardizer;
use crate::{check_xy, Matrix, MlError, Regressor};

/// K-nearest neighbours with inverse-distance weighting on standardized
/// features.
///
/// # Example
///
/// ```
/// use afp_ml::neighbors::KNearest;
/// use afp_ml::{Matrix, Regressor};
///
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0]]);
/// let y = [0.0, 1.0, 10.0];
/// let mut m = KNearest::new(2);
/// m.fit(&x, &y)?;
/// assert!(m.predict_row(&[0.4]) < 1.0);
/// # Ok::<(), afp_ml::MlError>(())
/// ```
#[derive(Clone, Debug)]
pub struct KNearest {
    k: usize,
    scaler: Option<Standardizer>,
    train: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl KNearest {
    /// KNN with `k` neighbours (at least 1).
    pub fn new(k: usize) -> KNearest {
        KNearest {
            k: k.max(1),
            scaler: None,
            train: Vec::new(),
            targets: Vec::new(),
        }
    }

    pub(crate) fn decode_state(r: &mut ByteReader) -> Option<KNearest> {
        let m = KNearest {
            k: codec::read_usize(r)?,
            scaler: codec::read_scaler(r)?,
            train: codec::read_rows(r)?,
            targets: codec::read_vec(r)?,
        };
        if m.train.len() != m.targets.len() {
            return None;
        }
        Some(m)
    }
}

impl Default for KNearest {
    fn default() -> KNearest {
        KNearest::new(5)
    }
}

impl Regressor for KNearest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        self.train = (0..z.rows()).map(|r| z.row(r).to_vec()).collect();
        self.targets = y.to_vec();
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("model must be fitted first");
        let z = scaler.transform_row(row);
        let mut dist: Vec<(f64, f64)> = self
            .train
            .iter()
            .zip(&self.targets)
            .map(|(t, &y)| {
                let d2: f64 = t.iter().zip(&z).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2.sqrt(), y)
            })
            .collect();
        dist.sort_by(|a, b| afp_ord::asc(a.0, b.0));
        let k = self.k.min(dist.len());
        // Inverse-distance weights; exact hits dominate.
        let mut num = 0.0;
        let mut den = 0.0;
        for &(d, y) in &dist[..k] {
            let w = 1.0 / (d + 1e-9);
            num += w * y;
            den += w;
        }
        num / den
    }

    fn name(&self) -> &'static str {
        "k-nearest neighbours"
    }

    fn save_state(&self) -> Option<ModelState> {
        let mut payload = Vec::new();
        codec::put_usize(&mut payload, self.k);
        codec::put_scaler(&mut payload, &self.scaler);
        codec::put_rows(&mut payload, &self.train);
        codec::put_vec(&mut payload, &self.targets);
        Some(ModelState {
            tag: codec::TAG_KNN,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_training_points_are_reproduced() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 0.0]]);
        let y = [5.0, 7.0, 9.0];
        let mut m = KNearest::new(1);
        m.fit(&x, &y).unwrap();
        for (r, &expected) in y.iter().enumerate() {
            assert!((m.predict_row(x.row(r)) - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn k_larger_than_set_uses_all() {
        let x = Matrix::from_rows(&[&[0.0], &[2.0]]);
        let y = [0.0, 2.0];
        let mut m = KNearest::new(10);
        m.fit(&x, &y).unwrap();
        let p = m.predict_row(&[1.0]);
        assert!((p - 1.0).abs() < 1e-9, "midpoint should average: {p}");
    }

    #[test]
    fn standardization_balances_feature_scales() {
        // Feature 1 has huge scale; without standardization it would
        // dominate the metric and pick the wrong neighbour.
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1000.0], &[0.1, 900.0]]);
        let y = [1.0, 2.0, 3.0];
        let mut m = KNearest::new(1);
        m.fit(&x, &y).unwrap();
        // Query near sample 2 in standardized space.
        let p = m.predict_row(&[0.1, 900.0]);
        assert!((p - 3.0).abs() < 1e-6);
    }
}

//! Feature standardization (zero mean, unit variance per column).

use crate::Matrix;

/// Column-wise standardizer: `z = (x - mean) / std`.
///
/// Constant columns get `std = 1` so they map to zero rather than NaN.
///
/// # Example
///
/// ```
/// use afp_ml::preprocess::Standardizer;
/// use afp_ml::Matrix;
///
/// let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]);
/// let s = Standardizer::fit(&x);
/// let z = s.transform(&x);
/// assert!((z.get(0, 0) + 1.0).abs() < 1e-12);
/// assert_eq!(z.get(0, 1), 0.0); // constant column
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit means/stds on `x`.
    pub fn fit(x: &Matrix) -> Standardizer {
        let n = x.rows().max(1) as f64;
        let mut means = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for (m, v) in means.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in means.iter_mut() {
            *m /= n;
        }
        let mut vars = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for (c, v) in x.row(r).iter().enumerate() {
                let d = v - means[c];
                vars[c] += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer { means, stds }
    }

    /// Standardize a whole matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                out.set(r, c, (x.get(r, c) - self.means[c]) / self.stds[c]);
            }
        }
        out
    }

    /// Standardize one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Reassemble a standardizer from previously extracted `means` and
    /// `stds` (the codec uses this to restore persisted models).
    ///
    /// # Panics
    ///
    /// Panics if the two slices disagree in length.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Standardizer {
        assert_eq!(means.len(), stds.len(), "means/stds length mismatch");
        Standardizer { means, stds }
    }

    /// Per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations (1.0 for constant columns).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        let col: Vec<f64> = z.col(0);
        let m = mean(&col);
        let var = col.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / 4.0;
        assert!(m.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_and_matrix_transforms_agree() {
        let x = Matrix::from_rows(&[&[1.0, -5.0], &[2.0, 0.0], &[3.0, 5.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        for r in 0..3 {
            assert_eq!(s.transform_row(x.row(r)), z.row(r).to_vec());
        }
    }
}

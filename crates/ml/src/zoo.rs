//! The model registry: Table I of the ApproxFPGAs paper.
//!
//! Maps [`MlModelId`] (ML1–ML18) to ready-to-train [`Regressor`] instances
//! with the default hyperparameters this reproduction uses.

use crate::boost::{AdaBoostR2, GradientBoosting};
use crate::forest::RandomForest;
use crate::kernel::{GaussianProcess, KernelRidge};
use crate::linear::{BayesianRidge, Lasso, LeastAngle, Ridge, SgdRegressor, SingleFeature};
use crate::mlp::Mlp;
use crate::neighbors::KNearest;
use crate::pls::PlsRegression;
use crate::symbolic::SymbolicRegression;
use crate::tree::DecisionTree;
use crate::Regressor;

/// The ASIC-parameter feature columns that ML1–ML3 regress on.
///
/// The dataset layer (crate `approxfpgas`) fills these indices in when
/// building models; they identify which feature column holds the ASIC
/// power/latency/area of a circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsicColumns {
    /// Feature index of ASIC power.
    pub power: usize,
    /// Feature index of ASIC latency (critical-path delay).
    pub latency: usize,
    /// Feature index of ASIC area.
    pub area: usize,
}

/// Identifier of one of the 18 statistical/ML models of Table I.
// Safe total order (`Eq + Ord`, no float keys): the clippy.toml
// `partial_cmp` ban fires inside the derive expansion, not here.
#[allow(clippy::disallowed_methods)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum MlModelId {
    Ml1,
    Ml2,
    Ml3,
    Ml4,
    Ml5,
    Ml6,
    Ml7,
    Ml8,
    Ml9,
    Ml10,
    Ml11,
    Ml12,
    Ml13,
    Ml14,
    Ml15,
    Ml16,
    Ml17,
    Ml18,
}

impl MlModelId {
    /// All 18 models in Table I order.
    pub const ALL: [MlModelId; 18] = [
        MlModelId::Ml1,
        MlModelId::Ml2,
        MlModelId::Ml3,
        MlModelId::Ml4,
        MlModelId::Ml5,
        MlModelId::Ml6,
        MlModelId::Ml7,
        MlModelId::Ml8,
        MlModelId::Ml9,
        MlModelId::Ml10,
        MlModelId::Ml11,
        MlModelId::Ml12,
        MlModelId::Ml13,
        MlModelId::Ml14,
        MlModelId::Ml15,
        MlModelId::Ml16,
        MlModelId::Ml17,
        MlModelId::Ml18,
    ];

    /// Table I label, e.g. `"ML11"`.
    pub fn label(&self) -> &'static str {
        match self {
            MlModelId::Ml1 => "ML1",
            MlModelId::Ml2 => "ML2",
            MlModelId::Ml3 => "ML3",
            MlModelId::Ml4 => "ML4",
            MlModelId::Ml5 => "ML5",
            MlModelId::Ml6 => "ML6",
            MlModelId::Ml7 => "ML7",
            MlModelId::Ml8 => "ML8",
            MlModelId::Ml9 => "ML9",
            MlModelId::Ml10 => "ML10",
            MlModelId::Ml11 => "ML11",
            MlModelId::Ml12 => "ML12",
            MlModelId::Ml13 => "ML13",
            MlModelId::Ml14 => "ML14",
            MlModelId::Ml15 => "ML15",
            MlModelId::Ml16 => "ML16",
            MlModelId::Ml17 => "ML17",
            MlModelId::Ml18 => "ML18",
        }
    }

    /// Table I description.
    pub fn description(&self) -> &'static str {
        match self {
            MlModelId::Ml1 => "Regression w.r.t. ASIC-AC Power",
            MlModelId::Ml2 => "Regression w.r.t. ASIC-AC Latency",
            MlModelId::Ml3 => "Regression w.r.t. ASIC-AC Area",
            MlModelId::Ml4 => "PLS Regression",
            MlModelId::Ml5 => "Random Forest",
            MlModelId::Ml6 => "Gradient Boosting",
            MlModelId::Ml7 => "Adaptive Boosting (AdaBoost)",
            MlModelId::Ml8 => "Gaussian Process",
            MlModelId::Ml9 => "Symbolic Regression",
            MlModelId::Ml10 => "Kernel Ridge",
            MlModelId::Ml11 => "Bayesian Ridge",
            MlModelId::Ml12 => "Coordinate Descent (Lasso)",
            MlModelId::Ml13 => "Least Angle Regression",
            MlModelId::Ml14 => "Ridge Regression",
            MlModelId::Ml15 => "Stochastic Gradient Descent",
            MlModelId::Ml16 => "K-Nearest Neighbours",
            MlModelId::Ml17 => "Multi-Layer Perceptron (MLP)",
            MlModelId::Ml18 => "Decision Tree",
        }
    }

    /// Whether this model is one of the plain statistical regressions on an
    /// ASIC parameter (ML1–ML3).
    pub fn is_asic_regression(&self) -> bool {
        matches!(self, MlModelId::Ml1 | MlModelId::Ml2 | MlModelId::Ml3)
    }
}

impl std::fmt::Display for MlModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Build a fresh, untrained model for `id` with the reproduction's default
/// hyperparameters.
///
/// `asic` supplies the feature-column indices ML1–ML3 regress on.
pub fn build_model(id: MlModelId, asic: AsicColumns) -> Box<dyn Regressor> {
    match id {
        MlModelId::Ml1 => Box::new(SingleFeature::new(asic.power)),
        MlModelId::Ml2 => Box::new(SingleFeature::new(asic.latency)),
        MlModelId::Ml3 => Box::new(SingleFeature::new(asic.area)),
        MlModelId::Ml4 => Box::new(PlsRegression::new(4)),
        MlModelId::Ml5 => Box::new(RandomForest::new(40, Default::default(), 0x5EED_0005)),
        MlModelId::Ml6 => Box::new(GradientBoosting::default()),
        MlModelId::Ml7 => Box::new(AdaBoostR2::default()),
        MlModelId::Ml8 => Box::new(GaussianProcess::default()),
        MlModelId::Ml9 => Box::new(SymbolicRegression::default()),
        MlModelId::Ml10 => Box::new(KernelRidge::default()),
        MlModelId::Ml11 => Box::new(BayesianRidge::default()),
        MlModelId::Ml12 => Box::new(Lasso::new(0.005, 200)),
        MlModelId::Ml13 => Box::new(LeastAngle::new(8)),
        MlModelId::Ml14 => Box::new(Ridge::new(1e-3)),
        MlModelId::Ml15 => Box::new(SgdRegressor::default()),
        MlModelId::Ml16 => Box::new(KNearest::new(5)),
        MlModelId::Ml17 => Box::new(Mlp::default()),
        MlModelId::Ml18 => Box::new(DecisionTree::new(Default::default())),
    }
}

/// [`Regressor::fit`] under an [`afp_obs`] span named `train/<label>`,
/// with the sample count reported as span items (samples/s throughput).
///
/// The disabled path is free: no clock read, no allocation — the fit is
/// dispatched directly.
///
/// # Errors
///
/// Propagates the underlying [`Regressor::fit`] error unchanged.
pub fn fit_traced(
    model: &mut dyn Regressor,
    id: MlModelId,
    x: &crate::Matrix,
    y: &[f64],
    recorder: &afp_obs::Recorder,
) -> Result<(), crate::MlError> {
    if !recorder.is_enabled() {
        return model.fit(x, y);
    }
    let name = format!("train/{}", id.label());
    let mut span = recorder.span(&name);
    span.add_items(y.len() as u64);
    model.fit(x, y)
}

/// [`Regressor::predict`] under an [`afp_obs`] span named
/// `estimate/<label>`, with the row count reported as span items
/// (estimates/s throughput). Free when the recorder is disabled.
pub fn predict_traced(
    model: &dyn Regressor,
    id: MlModelId,
    x: &crate::Matrix,
    recorder: &afp_obs::Recorder,
) -> Vec<f64> {
    if !recorder.is_enabled() {
        return model.predict(x);
    }
    let name = format!("estimate/{}", id.label());
    let mut span = recorder.span(&name);
    span.add_items(x.rows() as u64);
    model.predict(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::pearson;
    use crate::Matrix;

    fn asic() -> AsicColumns {
        AsicColumns {
            power: 0,
            latency: 1,
            area: 2,
        }
    }

    /// Near-linear dataset with 3 "ASIC" columns + 2 structural columns
    /// (disjoint RNG bit windows keep the columns independent).
    fn dataset(n: usize) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut s = 1u64;
        for _ in 0..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let power = ((s >> 8) & 0xFF) as f64 / 255.0;
            let lat = ((s >> 16) & 0xFF) as f64 / 255.0;
            let area = ((s >> 24) & 0xFF) as f64 / 255.0;
            let gates = area * 510.0 + ((s >> 32) & 0xF) as f64;
            let depth = lat * 20.0 + ((s >> 40) & 0x7) as f64;
            rows.push(vec![power, lat, area, gates, depth]);
            ys.push(0.85 * power + 0.10 * lat + 0.05 * area);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), ys)
    }

    #[test]
    fn registry_has_18_distinct_models() {
        assert_eq!(MlModelId::ALL.len(), 18);
        let labels: std::collections::HashSet<&str> =
            MlModelId::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 18);
    }

    #[test]
    fn every_model_trains_and_correlates() {
        let (x, y) = dataset(150);
        for id in MlModelId::ALL {
            let mut model = build_model(id, asic());
            model.fit(&x, &y).unwrap_or_else(|e| panic!("{id}: {e}"));
            let pred = model.predict(&x);
            let corr = pearson(&pred, &y);
            // ML2/ML3 regress on weakly-informative single columns; all
            // others must correlate strongly on this easy set.
            let floor = if id.is_asic_regression() { 0.05 } else { 0.75 };
            assert!(corr > floor, "{id} ({}): corr {corr}", model.name());
        }
    }

    #[test]
    fn asic_regressions_use_their_designated_column() {
        let (x, y) = dataset(100);
        let mut m1 = build_model(MlModelId::Ml1, asic());
        m1.fit(&x, &y).unwrap();
        // Power column dominates y: ML1 should do well.
        assert!(pearson(&m1.predict(&x), &y) > 0.9);
    }

    #[test]
    fn traced_fit_and_predict_record_spans_only_when_enabled() {
        let (x, y) = dataset(80);
        let rec = afp_obs::Recorder::enabled();
        let mut model = build_model(MlModelId::Ml14, asic());
        fit_traced(model.as_mut(), MlModelId::Ml14, &x, &y, &rec).unwrap();
        let est = predict_traced(model.as_ref(), MlModelId::Ml14, &x, &rec);
        assert_eq!(est.len(), x.rows());
        let stages: Vec<String> = rec.stages().into_iter().map(|(n, _)| n).collect();
        assert_eq!(stages, vec!["estimate/ML14", "train/ML14"]);

        // The disabled path computes the same thing and records nothing.
        let off = afp_obs::Recorder::disabled();
        let mut quiet = build_model(MlModelId::Ml14, asic());
        fit_traced(quiet.as_mut(), MlModelId::Ml14, &x, &y, &off).unwrap();
        assert_eq!(
            predict_traced(quiet.as_ref(), MlModelId::Ml14, &x, &off),
            est
        );
        assert!(off.stages().is_empty());
    }

    #[test]
    fn labels_match_table_one() {
        assert_eq!(MlModelId::Ml11.label(), "ML11");
        assert_eq!(MlModelId::Ml11.description(), "Bayesian Ridge");
        assert_eq!(MlModelId::Ml4.description(), "PLS Regression");
        assert!(MlModelId::Ml1.is_asic_regression());
        assert!(!MlModelId::Ml4.is_asic_regression());
    }
}

//! `afp-obs` — dependency-free structured tracing for the ApproxFPGAs
//! flow.
//!
//! The paper's headline claim is a *time* result (~10x exploration
//! speedup), so the flow needs per-stage instrumentation, not just two
//! coarse wall-clock numbers. This crate provides:
//!
//! * [`Recorder`] — a thread-safe aggregator of named stages. Each stage
//!   accumulates monotonic wall time ([`std::time::Instant`]), a call
//!   count and an item count (for throughput such as circuits/s).
//! * [`Span`]/[`SpanGuard`] — RAII timing of one stage activation.
//!   Opening a span against a **disabled** recorder performs no clock
//!   read and no allocation; the guard is a no-op shell. The `timing`
//!   cargo feature (default on) is the compile-time kill switch: without
//!   it even [`Recorder::enabled`] builds a disabled recorder.
//! * [`RunReport`] — a structured report (stages + named sections of
//!   typed fields) with two sinks: a human-readable stage table
//!   ([`RunReport::render_table`]) and a machine-readable JSON document
//!   ([`RunReport::to_json`], [`RunReport::write_json`]).
//!
//! Tracing is strictly observational: a recorder never influences what
//! the instrumented code computes, so enabling it cannot perturb
//! bit-identical thread-count guarantees. Spans recorded from inside
//! parallel workers *sum* per-worker durations, so a parallel stage's
//! wall time can exceed the elapsed wall clock — it is a work measure,
//! not a latency measure.
//!
//! # Example
//!
//! ```
//! use afp_obs::{Recorder, RunReport};
//!
//! let rec = Recorder::enabled();
//! {
//!     let mut span = rec.span("flow/characterize");
//!     span.add_items(120);
//!     // ... work ...
//! }
//! let report = RunReport::from_recorder(&rec);
//! assert_eq!(report.stages.len(), 1);
//! assert_eq!(report.stages[0].calls, 1);
//! assert_eq!(report.stages[0].items, 120);
//! assert!(report.to_json().starts_with('{'));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Accumulated statistics of one named stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Total wall time spent in the stage, in nanoseconds. For spans
    /// recorded from parallel workers this sums per-worker durations.
    pub wall_ns: u64,
    /// Number of span activations.
    pub calls: u64,
    /// Number of items processed (span-reported; 0 when not applicable).
    pub items: u64,
}

impl StageStats {
    /// Wall time in seconds.
    pub fn wall_s(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }

    /// Items per second, when both items and time were recorded.
    pub fn items_per_s(&self) -> Option<f64> {
        if self.items > 0 && self.wall_ns > 0 {
            Some(self.items as f64 / self.wall_s())
        } else {
            None
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    stages: Mutex<BTreeMap<String, StageStats>>,
}

impl Inner {
    fn add(&self, name: &str, wall: Duration, calls: u64, items: u64) {
        let mut stages = self.stages.lock().unwrap_or_else(PoisonError::into_inner);
        let stats = match stages.get_mut(name) {
            Some(stats) => stats,
            // Allocate the key only on first touch of a stage.
            None => stages.entry(name.to_string()).or_default(),
        };
        stats.wall_ns = stats
            .wall_ns
            .saturating_add(u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX));
        stats.calls += calls;
        stats.items += items;
    }
}

/// A thread-safe, cloneable aggregator of stage timings.
///
/// Cloning shares the underlying storage, so one recorder can be handed
/// to parallel workers and CLI layers alike. A **disabled** recorder
/// ([`Recorder::disabled`], or any recorder when the `timing` feature is
/// off) carries no storage: spans against it read no clock and allocate
/// nothing.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recording recorder (disabled anyway when the `timing` feature is
    /// compiled out).
    pub fn enabled() -> Recorder {
        #[cfg(feature = "timing")]
        {
            Recorder {
                inner: Some(Arc::new(Inner::default())),
            }
        }
        #[cfg(not(feature = "timing"))]
        {
            Recorder::disabled()
        }
    }

    /// A no-op recorder: spans cost one branch, no clock read, no
    /// allocation.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether spans against this recorder record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a timing span for `name`. Dropping the guard (or calling
    /// [`SpanGuard::finish`]) adds the elapsed time, one call and any
    /// reported items to the stage.
    pub fn span<'r>(&'r self, name: &'r str) -> SpanGuard<'r> {
        SpanGuard {
            active: self
                .inner
                .as_deref()
                .map(|inner| (inner, name, Instant::now())),
            items: 0,
        }
    }

    /// Record a finished duration directly (used when the timing was
    /// taken externally, and by tests).
    pub fn record(&self, name: &str, wall: Duration, items: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.add(name, wall, 1, items);
        }
    }

    /// Snapshot of every stage, sorted by stage name (deterministic
    /// regardless of completion order).
    pub fn stages(&self) -> Vec<(String, StageStats)> {
        match self.inner.as_deref() {
            Some(inner) => inner
                .stages
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(name, stats)| (name.clone(), *stats))
                .collect(),
            None => Vec::new(),
        }
    }
}

/// Alias kept for API symmetry with other tracing layers: a [`Span`] *is*
/// the RAII guard.
pub type Span<'r> = SpanGuard<'r>;

/// RAII guard of one stage activation; see [`Recorder::span`].
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
#[derive(Debug)]
pub struct SpanGuard<'r> {
    /// `None` on the disabled path — the guard is an inert shell.
    active: Option<(&'r Inner, &'r str, Instant)>,
    items: u64,
}

impl SpanGuard<'_> {
    /// Report `n` items processed under this span (for throughput).
    pub fn add_items(&mut self, n: u64) {
        if self.active.is_some() {
            self.items += n;
        }
    }

    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.active.take() {
            inner.add(name, start.elapsed(), 1, self.items);
        }
    }
}

/// A typed field value of a report section.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent / undefined (renders as `null` in JSON, `--` in tables).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned counter.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number; non-finite values serialize as `null`.
    Num(f64),
    /// Text.
    Str(String),
}

impl Value {
    /// A ratio that may be undefined (e.g. a speedup with a zero
    /// denominator): `None` becomes [`Value::Null`].
    pub fn ratio(r: Option<f64>) -> Value {
        match r {
            Some(x) if x.is_finite() => Value::Num(x),
            _ => Value::Null,
        }
    }

    fn to_json(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::UInt(n) => n.to_string(),
            Value::Int(n) => n.to_string(),
            Value::Num(x) => json_f64(*x),
            Value::Str(s) => json_str(s),
        }
    }

    fn render(&self) -> String {
        match self {
            Value::Null => "--".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::UInt(n) => n.to_string(),
            Value::Int(n) => n.to_string(),
            Value::Num(x) => format!("{x:.4}"),
            Value::Str(s) => s.clone(),
        }
    }
}

/// Format an `Option<f64>` ratio as `N.Nx`, or `--` when undefined.
pub fn fmt_ratio(r: Option<f64>) -> String {
    match r {
        Some(x) if x.is_finite() => format!("{x:.1}x"),
        _ => "--".to_string(),
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` is the shortest representation that round-trips; it is
        // valid JSON for every finite double.
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One named group of typed fields in a [`RunReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct Section {
    /// Section name (a top-level JSON key; must be unique per report).
    pub name: String,
    /// Ordered `(field, value)` pairs.
    pub fields: Vec<(String, Value)>,
}

impl Section {
    /// An empty section.
    pub fn new(name: &str) -> Section {
        Section {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Append a field (builder style).
    pub fn field(mut self, name: &str, value: Value) -> Section {
        self.fields.push((name.to_string(), value));
        self
    }
}

/// One stage row of a [`RunReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct StageRow {
    /// Stage name.
    pub name: String,
    /// Wall time in seconds.
    pub wall_s: f64,
    /// Span activations.
    pub calls: u64,
    /// Items processed (0 = not applicable).
    pub items: u64,
}

impl StageRow {
    /// Items per second, when defined.
    pub fn items_per_s(&self) -> Option<f64> {
        if self.items > 0 && self.wall_s > 0.0 {
            Some(self.items as f64 / self.wall_s)
        } else {
            None
        }
    }
}

/// Structured report of one run: stage table + named sections.
///
/// The JSON schema is stable by construction — `version`, `total_wall_s`
/// and `stages` first, then one top-level object per section, all field
/// orders fixed by the builder.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Schema version; bump when keys change meaning.
    pub version: u32,
    /// Stage rows, sorted by stage name.
    pub stages: Vec<StageRow>,
    /// Named sections, in builder order.
    pub sections: Vec<Section>,
}

/// Current JSON schema version emitted by [`RunReport::to_json`].
pub const REPORT_VERSION: u32 = 1;

impl Default for RunReport {
    fn default() -> RunReport {
        RunReport::new()
    }
}

impl RunReport {
    /// An empty report: no stages, no sections. The starting point for
    /// request-scoped reports (e.g. one `afp serve` response) that are
    /// assembled purely from sections, with no stage tracing attached.
    pub fn new() -> RunReport {
        RunReport {
            version: REPORT_VERSION,
            stages: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// A report holding the stages of `recorder` and no sections yet.
    pub fn from_recorder(recorder: &Recorder) -> RunReport {
        RunReport {
            version: REPORT_VERSION,
            stages: recorder
                .stages()
                .into_iter()
                .map(|(name, s)| StageRow {
                    name,
                    wall_s: s.wall_s(),
                    calls: s.calls,
                    items: s.items,
                })
                .collect(),
            sections: Vec::new(),
        }
    }

    /// Append a section.
    pub fn push_section(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// Total wall time across all stages, in seconds.
    pub fn total_wall_s(&self) -> f64 {
        let total: f64 = self.stages.iter().map(|s| s.wall_s).sum();
        // An empty sum is -0.0; canonicalize so a stage-less report
        // serializes the same "0.0" as a zeroed one.
        if total == 0.0 {
            0.0
        } else {
            total
        }
    }

    /// A copy with every timing zeroed (stage `wall_s` and therefore the
    /// serialized `total_wall_s`). Used by schema-stability goldens and
    /// CI diffs, where wall-clock values are noise.
    pub fn normalized(&self) -> RunReport {
        let mut out = self.clone();
        for stage in &mut out.stages {
            stage.wall_s = 0.0;
        }
        out
    }

    /// Overwrite one section field (e.g. to zero a scheduling-dependent
    /// counter before a golden comparison). No-op when absent.
    pub fn set_field(&mut self, section: &str, field: &str, value: Value) {
        for s in &mut self.sections {
            if s.name == section {
                for (name, v) in &mut s.fields {
                    if name == field {
                        *v = value;
                        return;
                    }
                }
            }
        }
    }

    /// Serialize as a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str(&format!("\"version\":{}", self.version));
        out.push_str(&format!(
            ",\"total_wall_s\":{}",
            json_f64(self.total_wall_s())
        ));
        out.push_str(",\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"wall_s\":{},\"calls\":{},\"items\":{},\"items_per_s\":{}}}",
                json_str(&s.name),
                json_f64(s.wall_s),
                s.calls,
                s.items,
                match s.items_per_s() {
                    Some(r) => json_f64(r),
                    None => "null".to_string(),
                }
            ));
        }
        out.push(']');
        for section in &self.sections {
            out.push(',');
            out.push_str(&json_str(&section.name));
            out.push_str(":{");
            for (i, (name, value)) in section.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(name));
                out.push(':');
                out.push_str(&value.to_json());
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Render the human-readable stage table plus section summaries.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .stages
            .iter()
            .map(|s| s.name.len())
            .chain(["stage".len(), "total".len()])
            .max()
            .unwrap_or(5);
        out.push_str(&format!(
            "{:<name_w$}  {:>10}  {:>7}  {:>9}  {:>11}\n",
            "stage", "wall", "calls", "items", "items/s"
        ));
        for s in &self.stages {
            let per_s = match s.items_per_s() {
                Some(r) => format!("{r:.1}"),
                None => "--".to_string(),
            };
            let items = if s.items > 0 {
                s.items.to_string()
            } else {
                "--".to_string()
            };
            out.push_str(&format!(
                "{:<name_w$}  {:>8.3} s  {:>7}  {:>9}  {:>11}\n",
                s.name, s.wall_s, s.calls, items, per_s
            ));
        }
        out.push_str(&format!(
            "{:<name_w$}  {:>8.3} s\n",
            "total",
            self.total_wall_s()
        ));
        for section in &self.sections {
            out.push_str(&format!("[{}]", section.name));
            for (i, (name, value)) in section.fields.iter().enumerate() {
                out.push_str(if i == 0 { " " } else { ", " });
                out.push_str(&format!("{name}={}", value.render()));
            }
            out.push('\n');
        }
        out
    }

    /// Write the JSON document to `path`, creating parent directories.
    /// Returns the path written.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ObsError`] (wrapping the underlying
    /// [`std::io::Error`]) when the parent directory cannot be created or
    /// the file cannot be written — never panics.
    pub fn write_json(&self, path: &Path) -> Result<PathBuf, ObsError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|source| ObsError {
                    op: "create report directory",
                    path: parent.to_path_buf(),
                    source,
                })?;
            }
        }
        let mut doc = self.to_json();
        doc.push('\n');
        std::fs::write(path, doc).map_err(|source| ObsError {
            op: "write report",
            path: path.to_path_buf(),
            source,
        })?;
        Ok(path.to_path_buf())
    }
}

/// A typed I/O error from a report sink: what failed, on which path, and
/// the underlying OS error.
#[derive(Debug)]
pub struct ObsError {
    /// The operation that failed (human phrasing, e.g. "write report").
    pub op: &'static str,
    /// The path involved.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot {} at {}: {}",
            self.op,
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        {
            let mut span = rec.span("noop");
            span.add_items(10);
        }
        rec.record("noop", Duration::from_secs(1), 5);
        assert!(!rec.is_enabled());
        assert!(rec.stages().is_empty());
        let report = RunReport::from_recorder(&rec);
        assert!(report.stages.is_empty());
        assert_eq!(report.total_wall_s(), 0.0);
    }

    #[test]
    #[cfg(feature = "timing")]
    fn spans_aggregate_calls_items_and_time() {
        let rec = Recorder::enabled();
        for _ in 0..3 {
            let mut span = rec.span("stage/a");
            span.add_items(7);
        }
        rec.record("stage/b", Duration::from_millis(5), 2);
        let stages = rec.stages();
        assert_eq!(stages.len(), 2);
        let (ref name_a, a) = stages[0];
        assert_eq!(name_a, "stage/a");
        assert_eq!(a.calls, 3);
        assert_eq!(a.items, 21);
        let (ref name_b, b) = stages[1];
        assert_eq!(name_b, "stage/b");
        assert_eq!(b.wall_ns, 5_000_000);
        assert_eq!(b.items_per_s(), Some(2.0 / 0.005));
    }

    #[test]
    #[cfg(feature = "timing")]
    fn recorder_is_shareable_across_threads() {
        let rec = Recorder::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let mut span = rec.span("parallel");
                        span.add_items(1);
                    }
                });
            }
        });
        let stages = rec.stages();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].1.calls, 200);
        assert_eq!(stages[0].1.items, 200);
    }

    #[test]
    fn json_is_schema_stable_and_parses_as_object() {
        let rec = Recorder::enabled();
        rec.record("s", Duration::from_millis(1), 3);
        let mut report = RunReport::from_recorder(&rec);
        report.push_section(
            Section::new("counters")
                .field("hits", Value::UInt(3))
                .field("rate", Value::ratio(None))
                .field("speedup", Value::ratio(Some(9.5))),
        );
        let json = report.normalized().to_json();
        assert!(json.starts_with("{\"version\":1,\"total_wall_s\":0"));
        assert!(json.contains("\"stages\":["));
        assert!(json.contains("\"counters\":{\"hits\":3,\"rate\":null,\"speedup\":9.5}"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_strings_and_maps_non_finite_to_null() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn table_renders_every_stage_and_the_total() {
        let rec = Recorder::enabled();
        rec.record("alpha", Duration::from_millis(250), 100);
        rec.record("beta", Duration::from_millis(750), 0);
        let table = RunReport::from_recorder(&rec).render_table();
        assert!(table.contains("alpha"));
        assert!(table.contains("beta"));
        assert!(table.contains("total"));
        assert!(table.lines().next().unwrap().contains("items/s"));
    }

    #[test]
    fn ratio_formatting_renders_undefined_as_dashes() {
        assert_eq!(fmt_ratio(Some(9.87)), "9.9x");
        assert_eq!(fmt_ratio(None), "--");
        assert_eq!(fmt_ratio(Some(f64::NAN)), "--");
        assert_eq!(fmt_ratio(Some(f64::INFINITY)), "--");
    }

    #[test]
    fn write_json_creates_parents_and_propagates_typed_errors() {
        let dir = std::env::temp_dir().join(format!("afp-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = RunReport::from_recorder(&Recorder::enabled());
        let path = dir.join("deep/nested/run_report.json");
        let written = report.write_json(&path).expect("parents are created");
        let text = std::fs::read_to_string(written).unwrap();
        assert!(text.ends_with("}\n"));
        // A path under a *file* cannot be created: typed error, no panic.
        let bad = dir.join("deep/nested/run_report.json/child.json");
        let err = report.write_json(&bad).unwrap_err();
        assert!(err.to_string().contains("cannot"));
        assert!(std::error::Error::source(&err).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_field_overwrites_matching_section_fields() {
        let mut report = RunReport::from_recorder(&Recorder::disabled());
        report.push_section(Section::new("runtime").field("steals", Value::UInt(17)));
        report.set_field("runtime", "steals", Value::UInt(0));
        assert_eq!(
            report.sections[0].fields[0],
            ("steals".to_string(), Value::UInt(0))
        );
        // Unknown section/field: silent no-op.
        report.set_field("nope", "x", Value::Null);
    }
}

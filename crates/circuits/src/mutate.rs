//! Seeded random netlist mutation.
//!
//! The EvoApprox library was produced by Cartesian Genetic Programming:
//! thousands of structurally diverse circuits obtained by mutating gate
//! functions and connections. This module reproduces that *diversity
//! mechanism* (not the search): a configurable number of random gate
//! mutations, biased toward the fanin cones of low-order output bits so
//! most mutants stay in the useful low-error region of the trade-off space.

use afp_netlist::{Gate, NetId, Netlist};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::arith::ArithCircuit;

/// Mutation configuration.
#[derive(Clone, Debug)]
pub struct MutationConfig {
    /// Number of gate mutations to apply.
    pub mutations: usize,
    /// Geometric bias toward low-order outputs: the probability of selecting
    /// output bit `i`'s cone decays by this factor per bit position
    /// (`0 < lsb_bias <= 1`; `1` = uniform).
    pub lsb_bias: f64,
    /// RNG seed; equal seeds give identical mutants.
    pub seed: u64,
}

impl Default for MutationConfig {
    fn default() -> MutationConfig {
        MutationConfig {
            mutations: 2,
            lsb_bias: 0.55,
            seed: 0,
        }
    }
}

/// Apply `config.mutations` random gate mutations to `circuit`, returning a
/// simplified mutant with the same interface.
///
/// Mutations pick a logic gate inside the fanin cone of a (LSB-biased)
/// randomly chosen output and either change its function, rewire one
/// operand to an earlier net from the same cone, or replace it with a
/// constant.
///
/// # Example
///
/// ```
/// use afp_circuits::adders::ripple_carry;
/// use afp_circuits::mutate::{mutate, MutationConfig};
///
/// let exact = ripple_carry(8);
/// let mutant = mutate(&exact, &MutationConfig { mutations: 3, seed: 7, ..Default::default() });
/// assert_eq!(mutant.width(), 8);
/// // Same interface, (almost surely) different function.
/// ```
pub fn mutate(circuit: &ArithCircuit, config: &MutationConfig) -> ArithCircuit {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xA5A5_0000);
    let mut netlist = circuit.netlist().clone();
    for m in 0..config.mutations {
        mutate_once(&mut netlist, config.lsb_bias, &mut rng);
        // Re-simplify periodically so stacked mutations act on clean
        // structure (and stay cheap), matching how CGP evaluates phenotypes.
        if m + 1 == config.mutations || (m + 1) % 4 == 0 {
            netlist = afp_netlist::opt::simplify(&netlist);
        }
    }
    netlist.set_name(format!(
        "{}_m{}s{:04x}",
        circuit.name(),
        config.mutations,
        config.seed & 0xFFFF
    ));
    ArithCircuit::new(circuit.kind(), circuit.width(), netlist)
}

fn mutate_once(netlist: &mut Netlist, lsb_bias: f64, rng: &mut SmallRng) {
    // Pick an output with geometric LSB bias, then a gate from its cone.
    let num_out = netlist.num_outputs();
    if num_out == 0 {
        return;
    }
    let mut out_idx = 0usize;
    while out_idx + 1 < num_out && rng.gen::<f64>() > lsb_bias {
        out_idx += 1;
    }
    let root = netlist.outputs()[out_idx];
    let mask = afp_netlist::analyze::cone(netlist, &[root]);
    let candidates: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter(|&(i, &m)| m && netlist.gates()[i].is_logic())
        .map(|(i, _)| i)
        .collect();
    let Some(&target_idx) = pick(&candidates, rng) else {
        return;
    };
    let target = NetId::from_index(target_idx);
    let gate = netlist.gate(target);
    let choice = rng.gen_range(0..100u32);
    let new_gate = if choice < 45 {
        // Change function, keep operands.
        let ops: Vec<NetId> = gate.operands().collect();
        match ops.len() {
            1 => match rng.gen_range(0..2) {
                0 => Gate::Not(ops[0]),
                _ => Gate::Buf(ops[0]),
            },
            2 => random_two_input(ops[0], ops[1], rng),
            3 => {
                if rng.gen_bool(0.5) {
                    Gate::Maj(ops[0], ops[1], ops[2])
                } else {
                    Gate::Mux(ops[0], ops[1], ops[2])
                }
            }
            _ => return, // constants: nothing to change
        }
    } else if choice < 85 {
        // Rewire one operand to a random earlier net.
        let ops: Vec<NetId> = gate.operands().collect();
        if ops.is_empty() || target_idx == 0 {
            return;
        }
        let which = rng.gen_range(0..ops.len());
        let new_src = NetId::from_index(rng.gen_range(0..target_idx));
        let mut k = 0usize;
        gate.map_operands(|op| {
            let r = if k == which { new_src } else { op };
            k += 1;
            r
        })
    } else {
        // Stuck-at constant.
        Gate::Const(rng.gen_bool(0.5))
    };
    netlist.replace_gate(target, new_gate);
}

fn random_two_input(a: NetId, b: NetId, rng: &mut SmallRng) -> Gate {
    match rng.gen_range(0..6) {
        0 => Gate::And(a, b),
        1 => Gate::Or(a, b),
        2 => Gate::Xor(a, b),
        3 => Gate::Nand(a, b),
        4 => Gate::Nor(a, b),
        _ => Gate::Xnor(a, b),
    }
}

fn pick<'a, T>(v: &'a [T], rng: &mut SmallRng) -> Option<&'a T> {
    if v.is_empty() {
        None
    } else {
        Some(&v[rng.gen_range(0..v.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adders::ripple_carry;
    use crate::arith::behavioral_signature;
    use crate::multipliers::wallace_multiplier;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let base = ripple_carry(8);
        let cfg = MutationConfig {
            mutations: 3,
            seed: 42,
            ..Default::default()
        };
        let m1 = mutate(&base, &cfg);
        let m2 = mutate(&base, &cfg);
        assert_eq!(behavioral_signature(&m1), behavioral_signature(&m2));
        assert_eq!(m1.netlist().gates(), m2.netlist().gates());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let base = wallace_multiplier(8);
        let sigs: std::collections::HashSet<u64> = (0..12)
            .map(|seed| {
                behavioral_signature(&mutate(
                    &base,
                    &MutationConfig {
                        mutations: 4,
                        seed,
                        ..Default::default()
                    },
                ))
            })
            .collect();
        assert!(sigs.len() >= 8, "only {} distinct mutants", sigs.len());
    }

    #[test]
    fn interface_is_preserved() {
        let base = ripple_carry(12);
        for seed in 0..8 {
            let m = mutate(
                &base,
                &MutationConfig {
                    mutations: 6,
                    seed,
                    ..Default::default()
                },
            );
            assert_eq!(m.width(), 12);
            assert_eq!(m.netlist().num_inputs(), 24);
            assert_eq!(m.netlist().num_outputs(), 13);
            m.netlist().validate().unwrap();
        }
    }

    #[test]
    fn zero_mutations_is_identity_function() {
        let base = ripple_carry(8);
        let m = mutate(
            &base,
            &MutationConfig {
                mutations: 0,
                seed: 1,
                ..Default::default()
            },
        );
        assert_eq!(behavioral_signature(&m), behavioral_signature(&base));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn mutants_always_validate(seed in 0u64..1000, muts in 1usize..8) {
            let base = wallace_multiplier(6);
            let m = mutate(&base, &MutationConfig { mutations: muts, seed, ..Default::default() });
            m.netlist().validate().unwrap();
            // And still evaluate without panicking.
            let _ = m.eval(63, 63);
        }
    }
}

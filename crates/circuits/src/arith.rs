//! Word-level wrapper around gate-level netlists for two-operand arithmetic
//! circuits, plus batch evaluation helpers.

use afp_netlist::{NetId, Netlist, Simulator};

/// The arithmetic function a circuit is *supposed* to compute.
// Safe total order (`Eq + Ord`, no float keys): the clippy.toml
// `partial_cmp` ban fires inside the derive expansion, not here.
#[allow(clippy::disallowed_methods)]
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArithKind {
    /// Unsigned addition: `w`-bit + `w`-bit → `w+1`-bit.
    Adder,
    /// Unsigned multiplication: `w`-bit × `w`-bit → `2w`-bit.
    Multiplier,
}

impl ArithKind {
    /// Short mnemonic used in circuit names (`"add"` / `"mul"`).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            ArithKind::Adder => "add",
            ArithKind::Multiplier => "mul",
        }
    }

    /// Output bus width for operand width `w`.
    pub fn out_width(&self, w: usize) -> usize {
        match self {
            ArithKind::Adder => w + 1,
            ArithKind::Multiplier => 2 * w,
        }
    }

    /// The exact (golden) result for operands `a`, `b` of width `w`.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `w` bits or `2w` exceeds 64.
    pub fn exact(&self, w: usize, a: u64, b: u64) -> u64 {
        assert!(w <= 32, "operand width limited to 32 bits");
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        assert!(a <= mask && b <= mask, "operand out of range");
        match self {
            ArithKind::Adder => a + b,
            ArithKind::Multiplier => a * b,
        }
    }

    /// Maximum representable output value (`2^out_width - 1`), the
    /// normalization constant in the paper's MED definition.
    pub fn max_output(&self, w: usize) -> u64 {
        let ow = self.out_width(w);
        if ow >= 64 {
            u64::MAX
        } else {
            (1u64 << ow) - 1
        }
    }
}

impl std::fmt::Display for ArithKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A two-operand arithmetic circuit: a gate-level netlist with a declared
/// word-level interface (`a[w]`, `b[w]` → `out[kind.out_width(w)]`, all
/// LSB-first).
///
/// # Example
///
/// ```
/// use afp_circuits::multipliers::array_multiplier;
///
/// let m = array_multiplier(8);
/// assert_eq!(m.eval(13, 11), 143);
/// assert_eq!(m.width(), 8);
/// assert_eq!(m.netlist().num_outputs(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct ArithCircuit {
    kind: ArithKind,
    width: usize,
    netlist: Netlist,
}

impl ArithCircuit {
    /// Wrap a netlist as an arithmetic circuit.
    ///
    /// # Panics
    ///
    /// Panics if the netlist interface does not match `kind`/`width`
    /// (`2w` inputs, `kind.out_width(w)` outputs).
    pub fn new(kind: ArithKind, width: usize, netlist: Netlist) -> ArithCircuit {
        assert_eq!(
            netlist.num_inputs(),
            2 * width,
            "expected {} primary inputs",
            2 * width
        );
        assert_eq!(
            netlist.num_outputs(),
            kind.out_width(width),
            "expected {} primary outputs",
            kind.out_width(width)
        );
        ArithCircuit {
            kind,
            width,
            netlist,
        }
    }

    /// The intended arithmetic function.
    pub fn kind(&self) -> ArithKind {
        self.kind
    }

    /// Operand width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The circuit's name (delegates to the netlist).
    pub fn name(&self) -> &str {
        self.netlist.name()
    }

    /// Rename the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.netlist.set_name(name);
    }

    /// The underlying gate-level netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consume the wrapper, returning the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Replace the netlist with a simplified copy (see
    /// [`afp_netlist::opt::simplify`]); interface is preserved.
    pub fn simplify(&mut self) {
        self.netlist = afp_netlist::opt::simplify(&self.netlist);
    }

    /// The exact (golden) value this circuit approximates.
    pub fn exact(&self, a: u64, b: u64) -> u64 {
        self.kind.exact(self.width, a, b)
    }

    /// Evaluate the circuit behaviourally on one operand pair.
    ///
    /// For bulk evaluation use [`BatchEvaluator`], which amortizes the
    /// simulator allocation and evaluates 64 pairs per pass.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `width` bits.
    pub fn eval(&self, a: u64, b: u64) -> u64 {
        let mut batch = BatchEvaluator::new(self);
        batch.eval_pairs(&[(a, b)])[0]
    }
}

/// Bit-parallel batch evaluator for an [`ArithCircuit`]: evaluates up to 64
/// operand pairs per simulation pass.
///
/// # Example
///
/// ```
/// use afp_circuits::adders::ripple_carry;
/// use afp_circuits::BatchEvaluator;
///
/// let add = ripple_carry(8);
/// let mut batch = BatchEvaluator::new(&add);
/// let out = batch.eval_pairs(&[(1, 2), (255, 255), (100, 27)]);
/// assert_eq!(out, vec![3, 510, 127]);
/// ```
#[derive(Debug)]
pub struct BatchEvaluator<'c> {
    circuit: &'c ArithCircuit,
    sim: Simulator<'c>,
    words: Vec<u64>,
    outputs: Vec<NetId>,
    out_words: Vec<u64>,
}

impl<'c> BatchEvaluator<'c> {
    /// Create an evaluator bound to `circuit`.
    pub fn new(circuit: &'c ArithCircuit) -> BatchEvaluator<'c> {
        let outputs = circuit.netlist().outputs().to_vec();
        BatchEvaluator {
            circuit,
            sim: Simulator::new(circuit.netlist()),
            words: vec![0u64; circuit.netlist().num_inputs()],
            out_words: vec![0u64; outputs.len()],
            outputs,
        }
    }

    /// Evaluate a chunk of at most 64 operand pairs in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `pairs.len() > 64`, or if an operand is out of range.
    pub fn eval_chunk(&mut self, pairs: &[(u64, u64)]) -> Vec<u64> {
        let mut out = Vec::with_capacity(pairs.len());
        self.eval_chunk_into(pairs, &mut out);
        out
    }

    /// Like [`BatchEvaluator::eval_chunk`], but appends the results into a
    /// caller-provided buffer — the whole evaluation is then allocation-free
    /// once the evaluator is warm.
    ///
    /// # Panics
    ///
    /// Panics if `pairs.len() > 64`, or if an operand is out of range.
    pub fn eval_chunk_into(&mut self, pairs: &[(u64, u64)], out: &mut Vec<u64>) {
        assert!(pairs.len() <= 64, "a chunk is at most 64 lanes");
        let w = self.circuit.width();
        self.words.fill(0);
        for (lane, &(a, b)) in pairs.iter().enumerate() {
            afp_netlist::pack_operand(&mut self.words, 0, w, lane, a);
            afp_netlist::pack_operand(&mut self.words, w, w, lane, b);
        }
        self.sim.run_into(&self.words);
        for (slot, &o) in self.out_words.iter_mut().zip(&self.outputs) {
            *slot = self.sim.value(o);
        }
        out.extend((0..pairs.len()).map(|lane| afp_netlist::unpack_result(&self.out_words, lane)));
    }

    /// Evaluate any number of operand pairs, chunking internally.
    pub fn eval_pairs(&mut self, pairs: &[(u64, u64)]) -> Vec<u64> {
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(64) {
            self.eval_chunk_into(chunk, &mut out);
        }
        out
    }
}

/// A 64-bit behavioural signature of a circuit: outputs hashed over a fixed
/// deterministic stimulus (corner cases + pseudo-random pairs). Two circuits
/// with equal signatures almost surely compute the same function; used for
/// library dedup.
pub fn behavioral_signature(circuit: &ArithCircuit) -> u64 {
    let w = circuit.width();
    let mask = (1u64 << w) - 1;
    let mut pairs: Vec<(u64, u64)> = vec![
        (0, 0),
        (mask, mask),
        (0, mask),
        (mask, 0),
        (1, 1),
        (mask >> 1, (mask >> 1) + 1),
    ];
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (w as u64);
    for _ in 0..122 {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        pairs.push((v & mask, (v >> 32) & mask));
    }
    let mut batch = BatchEvaluator::new(circuit);
    let outs = batch.eval_pairs(&pairs);
    // FNV-1a over the output stream.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for o in outs {
        for byte in o.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_adder(width: usize) -> ArithCircuit {
        // "Adder" that just returns operand a (zero-extended): legal
        // interface, very approximate.
        let mut n = Netlist::new("wire_add");
        let a = n.add_inputs(width);
        let _b = n.add_inputs(width);
        let zero = n.constant(false);
        let mut outs = a;
        outs.push(zero);
        n.set_outputs(outs);
        ArithCircuit::new(ArithKind::Adder, width, n)
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(ArithKind::Adder.out_width(8), 9);
        assert_eq!(ArithKind::Multiplier.out_width(8), 16);
        assert_eq!(ArithKind::Adder.max_output(8), 511);
        assert_eq!(ArithKind::Multiplier.max_output(8), 65535);
        assert_eq!(ArithKind::Adder.exact(8, 255, 255), 510);
        assert_eq!(ArithKind::Multiplier.exact(8, 255, 255), 65025);
    }

    #[test]
    #[should_panic(expected = "primary inputs")]
    fn interface_mismatch_panics() {
        let n = Netlist::new("empty");
        let _ = ArithCircuit::new(ArithKind::Adder, 4, n);
    }

    #[test]
    fn wire_adder_behaves_as_declared() {
        let c = wire_adder(4);
        assert_eq!(c.eval(9, 3), 9);
        assert_eq!(c.exact(9, 3), 12);
    }

    #[test]
    fn batch_matches_single_eval() {
        let c = wire_adder(6);
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 64, (i * 7) % 64)).collect();
        let mut batch = BatchEvaluator::new(&c);
        let out = batch.eval_pairs(&pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(out[i], c.eval(a, b));
        }
    }

    #[test]
    fn signature_distinguishes_functions() {
        let a = wire_adder(4);
        let mut n = Netlist::new("other");
        let ins = n.add_inputs(8);
        let zero = n.constant(false);
        let mut outs: Vec<NetId> = ins[4..8].to_vec(); // returns b instead
        outs.push(zero);
        n.set_outputs(outs);
        let b = ArithCircuit::new(ArithKind::Adder, 4, n);
        assert_ne!(behavioral_signature(&a), behavioral_signature(&b));
        assert_eq!(behavioral_signature(&a), behavioral_signature(&a.clone()));
    }
}

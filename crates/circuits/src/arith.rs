//! Word-level wrapper around gate-level netlists for two-operand arithmetic
//! circuits, plus batch evaluation helpers.

use afp_netlist::{Netlist, SimTape, LANES, LANE_WORDS};

/// The arithmetic function a circuit is *supposed* to compute.
// Safe total order (`Eq + Ord`, no float keys): the clippy.toml
// `partial_cmp` ban fires inside the derive expansion, not here.
#[allow(clippy::disallowed_methods)]
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArithKind {
    /// Unsigned addition: `w`-bit + `w`-bit → `w+1`-bit.
    Adder,
    /// Unsigned multiplication: `w`-bit × `w`-bit → `2w`-bit.
    Multiplier,
}

impl ArithKind {
    /// Short mnemonic used in circuit names (`"add"` / `"mul"`).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            ArithKind::Adder => "add",
            ArithKind::Multiplier => "mul",
        }
    }

    /// Output bus width for operand width `w`.
    pub fn out_width(&self, w: usize) -> usize {
        match self {
            ArithKind::Adder => w + 1,
            ArithKind::Multiplier => 2 * w,
        }
    }

    /// The exact (golden) result for operands `a`, `b` of width `w`.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `w` bits or `2w` exceeds 64.
    pub fn exact(&self, w: usize, a: u64, b: u64) -> u64 {
        assert!(w <= 32, "operand width limited to 32 bits");
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        assert!(a <= mask && b <= mask, "operand out of range");
        match self {
            ArithKind::Adder => a + b,
            ArithKind::Multiplier => a * b,
        }
    }

    /// Maximum representable output value (`2^out_width - 1`), the
    /// normalization constant in the paper's MED definition.
    pub fn max_output(&self, w: usize) -> u64 {
        let ow = self.out_width(w);
        if ow >= 64 {
            u64::MAX
        } else {
            (1u64 << ow) - 1
        }
    }
}

impl std::fmt::Display for ArithKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A two-operand arithmetic circuit: a gate-level netlist with a declared
/// word-level interface (`a[w]`, `b[w]` → `out[kind.out_width(w)]`, all
/// LSB-first).
///
/// # Example
///
/// ```
/// use afp_circuits::multipliers::array_multiplier;
///
/// let m = array_multiplier(8);
/// assert_eq!(m.eval(13, 11), 143);
/// assert_eq!(m.width(), 8);
/// assert_eq!(m.netlist().num_outputs(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct ArithCircuit {
    kind: ArithKind,
    width: usize,
    netlist: Netlist,
}

impl ArithCircuit {
    /// Wrap a netlist as an arithmetic circuit.
    ///
    /// # Panics
    ///
    /// Panics if the netlist interface does not match `kind`/`width`
    /// (`2w` inputs, `kind.out_width(w)` outputs).
    pub fn new(kind: ArithKind, width: usize, netlist: Netlist) -> ArithCircuit {
        assert_eq!(
            netlist.num_inputs(),
            2 * width,
            "expected {} primary inputs",
            2 * width
        );
        assert_eq!(
            netlist.num_outputs(),
            kind.out_width(width),
            "expected {} primary outputs",
            kind.out_width(width)
        );
        ArithCircuit {
            kind,
            width,
            netlist,
        }
    }

    /// The intended arithmetic function.
    pub fn kind(&self) -> ArithKind {
        self.kind
    }

    /// Operand width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The circuit's name (delegates to the netlist).
    pub fn name(&self) -> &str {
        self.netlist.name()
    }

    /// Rename the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.netlist.set_name(name);
    }

    /// The underlying gate-level netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consume the wrapper, returning the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Replace the netlist with a simplified copy (see
    /// [`afp_netlist::opt::simplify`]); interface is preserved.
    pub fn simplify(&mut self) {
        self.netlist = afp_netlist::opt::simplify(&self.netlist);
    }

    /// The exact (golden) value this circuit approximates.
    pub fn exact(&self, a: u64, b: u64) -> u64 {
        self.kind.exact(self.width, a, b)
    }

    /// Evaluate the circuit behaviourally on one operand pair.
    ///
    /// For bulk evaluation use [`BatchEvaluator`], which amortizes the
    /// simulator allocation and evaluates 64 pairs per pass.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `width` bits.
    pub fn eval(&self, a: u64, b: u64) -> u64 {
        let mut batch = BatchEvaluator::new(self);
        batch.eval_pairs(&[(a, b)])[0]
    }
}

/// How a [`BatchEvaluator`] holds its compiled tape: its own copy, or a
/// borrow of a tape the caller compiled once and shares across evaluators
/// (the error-analysis workers share one tape per circuit).
#[derive(Debug)]
enum TapeRef<'c> {
    Owned(SimTape),
    Shared(&'c SimTape),
}

/// Bit-parallel batch evaluator for an [`ArithCircuit`].
///
/// The circuit's netlist is compiled once into a [`SimTape`]; evaluation
/// then runs either the scalar kernel (≤ 64 operand pairs per pass) or the
/// wide kernel ([`LANES`] pairs per pass, autovectorized). Both produce
/// identical results — [`BatchEvaluator::eval_pairs`] picks per chunk.
///
/// # Example
///
/// ```
/// use afp_circuits::adders::ripple_carry;
/// use afp_circuits::BatchEvaluator;
///
/// let add = ripple_carry(8);
/// let mut batch = BatchEvaluator::new(&add);
/// let out = batch.eval_pairs(&[(1, 2), (255, 255), (100, 27)]);
/// assert_eq!(out, vec![3, 510, 127]);
/// ```
#[derive(Debug)]
pub struct BatchEvaluator<'c> {
    circuit: &'c ArithCircuit,
    tape: TapeRef<'c>,
    /// Net indices of the primary outputs, LSB-first.
    outputs: Vec<usize>,
    // Scalar (≤ 64 lane) buffers.
    words: Vec<u64>,
    values: Vec<u64>,
    out_words: Vec<u64>,
    // Wide ([`LANES`] lane) buffers, kept separate so alternating between
    // the two kernels never thrashes a shared allocation.
    wide_words: Vec<u64>,
    wide_values: Vec<u64>,
}

/// Periodic input-word patterns for exhaustive enumeration: bit `l` of
/// `EXHAUSTIVE_PAT[q]` is bit `q` of the lane index `l` (valid for any
/// 64-aligned block of consecutive pair indices).
const EXHAUSTIVE_PAT: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl<'c> BatchEvaluator<'c> {
    /// Create an evaluator bound to `circuit`, compiling its own tape.
    pub fn new(circuit: &'c ArithCircuit) -> BatchEvaluator<'c> {
        Self::build(circuit, TapeRef::Owned(SimTape::compile(circuit.netlist())))
    }

    /// Create an evaluator that executes a tape the caller already
    /// compiled from this circuit's netlist — lets many evaluators (e.g.
    /// parallel error-analysis workers) share one lowering.
    ///
    /// # Panics
    ///
    /// Panics if `tape` was not compiled from a netlist with the same
    /// net and input counts as `circuit.netlist()`.
    pub fn with_tape(circuit: &'c ArithCircuit, tape: &'c SimTape) -> BatchEvaluator<'c> {
        assert_eq!(
            tape.num_nets(),
            circuit.netlist().len(),
            "tape was compiled from a different netlist (net count mismatch)"
        );
        assert_eq!(
            tape.num_inputs(),
            circuit.netlist().num_inputs(),
            "tape was compiled from a different netlist (input count mismatch)"
        );
        Self::build(circuit, TapeRef::Shared(tape))
    }

    fn build(circuit: &'c ArithCircuit, tape: TapeRef<'c>) -> BatchEvaluator<'c> {
        let outputs: Vec<usize> = circuit
            .netlist()
            .outputs()
            .iter()
            .map(|o| o.index())
            .collect();
        assert!(
            outputs.len() <= 64,
            "batch evaluation supports at most 64 output bits"
        );
        let num_inputs = circuit.netlist().num_inputs();
        BatchEvaluator {
            circuit,
            tape,
            words: vec![0u64; num_inputs],
            values: Vec::new(),
            out_words: vec![0u64; outputs.len()],
            wide_words: vec![0u64; num_inputs * LANE_WORDS],
            wide_values: Vec::new(),
            outputs,
        }
    }

    /// Evaluate a chunk of at most 64 operand pairs in one scalar pass.
    ///
    /// # Panics
    ///
    /// Panics if `pairs.len() > 64`, or if an operand is out of range.
    pub fn eval_chunk(&mut self, pairs: &[(u64, u64)]) -> Vec<u64> {
        let mut out = Vec::with_capacity(pairs.len());
        self.eval_chunk_into(pairs, &mut out);
        out
    }

    /// Like [`BatchEvaluator::eval_chunk`], but appends the results into a
    /// caller-provided buffer — the whole evaluation is then allocation-free
    /// once the evaluator is warm.
    ///
    /// # Panics
    ///
    /// Panics if `pairs.len() > 64`, or if an operand is out of range.
    pub fn eval_chunk_into(&mut self, pairs: &[(u64, u64)], out: &mut Vec<u64>) {
        assert!(pairs.len() <= 64, "a chunk is at most 64 lanes");
        let w = self.circuit.width();
        self.words.fill(0);
        for (lane, &(a, b)) in pairs.iter().enumerate() {
            afp_netlist::pack_operand(&mut self.words, 0, w, lane, a);
            afp_netlist::pack_operand(&mut self.words, w, w, lane, b);
        }
        let tape = match &self.tape {
            TapeRef::Owned(t) => t,
            TapeRef::Shared(t) => t,
        };
        tape.execute(&self.words, &mut self.values);
        for (slot, &o) in self.out_words.iter_mut().zip(&self.outputs) {
            *slot = self.values[o];
        }
        out.extend((0..pairs.len()).map(|lane| afp_netlist::unpack_result(&self.out_words, lane)));
    }

    /// Evaluate a block of at most [`LANES`] operand pairs in one wide
    /// pass, appending one result per pair. Operand packing and result
    /// extraction go through 64×64 bit transposes, so the per-pair
    /// conversion cost is a handful of word operations rather than one
    /// shift/mask chain per operand bit.
    ///
    /// # Panics
    ///
    /// Panics if `pairs.len() > LANES`.
    pub fn eval_block_into(&mut self, pairs: &[(u64, u64)], out: &mut Vec<u64>) {
        assert!(pairs.len() <= LANES, "a block is at most LANES lanes");
        const W: usize = LANE_WORDS;
        let w = self.circuit.width();
        let mask = (1u64 << w) - 1;
        for (j, group) in pairs.chunks(64).enumerate() {
            // Lane-major matrix: row l = the pair's packed input word.
            // After transposing, row o = simulation word of input o.
            let mut m = [0u64; 64];
            for (l, &(a, b)) in group.iter().enumerate() {
                m[l] = (a & mask) | ((b & mask) << w);
            }
            afp_netlist::transpose64(&mut m);
            for (o, &word) in m.iter().enumerate().take(2 * w) {
                self.wide_words[o * W + j] = word;
            }
        }
        self.exec_wide_and_unpack(pairs.len(), out);
    }

    /// Evaluate `n` consecutive pairs of the exhaustive enumeration
    /// starting at pair index `start`, where index `p` encodes the
    /// operands `(p >> w, p & ((1 << w) - 1))` — the row-major order the
    /// error analysis walks. When `start` is 64-aligned (always true for
    /// the analysis blocks) the operand packing collapses to writing
    /// precomputed periodic constants: zero per-pair packing work.
    ///
    /// # Panics
    ///
    /// Panics if `n > LANES`.
    pub fn eval_exhaustive_block_into(&mut self, start: u64, n: usize, out: &mut Vec<u64>) {
        assert!(n <= LANES, "a block is at most LANES lanes");
        const W: usize = LANE_WORDS;
        let w = self.circuit.width();
        let mask = (1u64 << w) - 1;
        if start.is_multiple_of(64) {
            for o in 0..2 * w {
                // Input o carries pair-index bit q: operand a occupies
                // the high w index bits, operand b the low w.
                let q = if o < w { w + o } else { o - w };
                for j in 0..W {
                    self.wide_words[o * W + j] = if q < 6 {
                        EXHAUSTIVE_PAT[q]
                    } else {
                        let base = start + (j * 64) as u64;
                        0u64.wrapping_sub((base >> q) & 1)
                    };
                }
            }
        } else {
            for l in 0..n {
                let p = start + l as u64;
                afp_netlist::pack_operand_wide(&mut self.wide_words, 0, w, l, p >> w);
                afp_netlist::pack_operand_wide(&mut self.wide_words, w, w, l, p & mask);
            }
        }
        self.exec_wide_and_unpack(n, out);
    }

    /// Run the wide kernel over the packed `wide_words` and append the
    /// first `n` lane results to `out` via transpose extraction.
    fn exec_wide_and_unpack(&mut self, n: usize, out: &mut Vec<u64>) {
        const W: usize = LANE_WORDS;
        let tape = match &self.tape {
            TapeRef::Owned(t) => t,
            TapeRef::Shared(t) => t,
        };
        tape.execute_wide(&self.wide_words, &mut self.wide_values);
        let mut j = 0;
        let mut done = 0;
        while done < n {
            // Row b = simulation word of output bit b for lane word j;
            // after transposing, row l = the integer result of lane l.
            let mut m = [0u64; 64];
            for (b, &o) in self.outputs.iter().enumerate() {
                m[b] = self.wide_values[o * W + j];
            }
            afp_netlist::transpose64(&mut m);
            let lanes = (n - done).min(64);
            out.extend_from_slice(&m[..lanes]);
            j += 1;
            done += lanes;
        }
    }

    /// Evaluate any number of operand pairs, chunking internally: blocks
    /// of [`LANES`] pairs run the wide kernel, a short tail (≤ 64 pairs)
    /// runs the scalar kernel.
    pub fn eval_pairs(&mut self, pairs: &[(u64, u64)]) -> Vec<u64> {
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(LANES) {
            if chunk.len() <= 64 {
                self.eval_chunk_into(chunk, &mut out);
            } else {
                self.eval_block_into(chunk, &mut out);
            }
        }
        out
    }
}

/// A 64-bit behavioural signature of a circuit: outputs hashed over a fixed
/// deterministic stimulus (corner cases + pseudo-random pairs). Two circuits
/// with equal signatures almost surely compute the same function; used for
/// library dedup.
pub fn behavioral_signature(circuit: &ArithCircuit) -> u64 {
    let w = circuit.width();
    let mask = (1u64 << w) - 1;
    let mut pairs: Vec<(u64, u64)> = vec![
        (0, 0),
        (mask, mask),
        (0, mask),
        (mask, 0),
        (1, 1),
        (mask >> 1, (mask >> 1) + 1),
    ];
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (w as u64);
    for _ in 0..122 {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        pairs.push((v & mask, (v >> 32) & mask));
    }
    let mut batch = BatchEvaluator::new(circuit);
    let outs = batch.eval_pairs(&pairs);
    // FNV-1a over the output stream.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for o in outs {
        for byte in o.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_netlist::NetId;

    fn wire_adder(width: usize) -> ArithCircuit {
        // "Adder" that just returns operand a (zero-extended): legal
        // interface, very approximate.
        let mut n = Netlist::new("wire_add");
        let a = n.add_inputs(width);
        let _b = n.add_inputs(width);
        let zero = n.constant(false);
        let mut outs = a;
        outs.push(zero);
        n.set_outputs(outs);
        ArithCircuit::new(ArithKind::Adder, width, n)
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(ArithKind::Adder.out_width(8), 9);
        assert_eq!(ArithKind::Multiplier.out_width(8), 16);
        assert_eq!(ArithKind::Adder.max_output(8), 511);
        assert_eq!(ArithKind::Multiplier.max_output(8), 65535);
        assert_eq!(ArithKind::Adder.exact(8, 255, 255), 510);
        assert_eq!(ArithKind::Multiplier.exact(8, 255, 255), 65025);
    }

    #[test]
    #[should_panic(expected = "primary inputs")]
    fn interface_mismatch_panics() {
        let n = Netlist::new("empty");
        let _ = ArithCircuit::new(ArithKind::Adder, 4, n);
    }

    #[test]
    fn wire_adder_behaves_as_declared() {
        let c = wire_adder(4);
        assert_eq!(c.eval(9, 3), 9);
        assert_eq!(c.exact(9, 3), 12);
    }

    #[test]
    fn batch_matches_single_eval() {
        let c = wire_adder(6);
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 64, (i * 7) % 64)).collect();
        let mut batch = BatchEvaluator::new(&c);
        let out = batch.eval_pairs(&pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(out[i], c.eval(a, b));
        }
    }

    #[test]
    fn wide_block_matches_scalar_chunks() {
        let c = crate::adders::ripple_carry(6);
        let pairs: Vec<(u64, u64)> = (0..300).map(|i| ((i * 31) % 64, (i * 17) % 64)).collect();
        let mut batch = BatchEvaluator::new(&c);
        let mut wide = Vec::new();
        batch.eval_block_into(&pairs, &mut wide);
        let mut scalar = Vec::new();
        for chunk in pairs.chunks(64) {
            batch.eval_chunk_into(chunk, &mut scalar);
        }
        assert_eq!(wide, scalar);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(wide[i], a + b, "pair {i}");
        }
    }

    #[test]
    fn exhaustive_block_matches_explicit_pairs() {
        let c = crate::adders::ripple_carry(5);
        let w = 5;
        let mask = (1u64 << w) - 1;
        let mut batch = BatchEvaluator::new(&c);
        // Aligned starts take the periodic-constant fast path, unaligned
        // ones the generic wide pack; both must agree with pair-by-pair
        // evaluation.
        for start in [0u64, 512, 64, 33, 97] {
            let n = 300;
            let mut fast = Vec::new();
            batch.eval_exhaustive_block_into(start, n, &mut fast);
            let pairs: Vec<(u64, u64)> = (0..n as u64)
                .map(|l| {
                    let p = start + l;
                    ((p >> w) & mask, p & mask)
                })
                .collect();
            assert_eq!(fast, batch.eval_pairs(&pairs), "start {start}");
        }
    }

    #[test]
    fn shared_tape_matches_owned_tape() {
        let c = crate::multipliers::wallace_multiplier(4);
        let tape = SimTape::compile(c.netlist());
        let pairs: Vec<(u64, u64)> = (0..16u64)
            .flat_map(|a| (0..16u64).map(move |b| (a, b)))
            .collect();
        let mut owned = BatchEvaluator::new(&c);
        let mut shared = BatchEvaluator::with_tape(&c, &tape);
        let out = owned.eval_pairs(&pairs);
        assert_eq!(out, shared.eval_pairs(&pairs));
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(out[i], a * b, "pair {i}");
        }
    }

    #[test]
    fn signature_distinguishes_functions() {
        let a = wire_adder(4);
        let mut n = Netlist::new("other");
        let ins = n.add_inputs(8);
        let zero = n.constant(false);
        let mut outs: Vec<NetId> = ins[4..8].to_vec(); // returns b instead
        outs.push(zero);
        n.set_outputs(outs);
        let b = ArithCircuit::new(ArithKind::Adder, 4, n);
        assert_ne!(behavioral_signature(&a), behavioral_signature(&b));
        assert_eq!(behavioral_signature(&a), behavioral_signature(&a.clone()));
    }
}

//! Multiplier generators: exact architectures and approximate variants.
//!
//! All generators return an [`ArithCircuit`] with the interface
//! `a[w], b[w] → p[2w]` (LSB-first, unsigned).

use afp_netlist::{NetId, Netlist};

use crate::adders::{full_adder, half_adder};
use crate::arith::{ArithCircuit, ArithKind};

fn declare_operands(n: &mut Netlist, width: usize) -> (Vec<NetId>, Vec<NetId>) {
    let a = n.add_inputs(width);
    let b = n.add_inputs(width);
    (a, b)
}

/// Column-wise partial-product matrix: `cols[c]` holds the bits of weight
/// `2^c` still waiting to be summed.
fn partial_products(
    n: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    keep: impl Fn(usize, usize) -> bool,
) -> Vec<Vec<NetId>> {
    let w = a.len();
    let mut cols: Vec<Vec<NetId>> = vec![Vec::new(); 2 * w];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            if keep(i, j) {
                let pp = n.and(ai, bj);
                cols[i + j].push(pp);
            }
        }
    }
    cols
}

/// Reduce a partial-product column matrix to the final product bits using
/// carry-save 3:2/2:2 reduction followed by a ripple-carry final adder.
fn reduce_columns(n: &mut Netlist, mut cols: Vec<Vec<NetId>>) -> Vec<NetId> {
    let width = cols.len();
    // Carry-save reduction until every column holds at most 2 bits.
    loop {
        let worst = cols.iter().map(Vec::len).max().unwrap_or(0);
        if worst <= 2 {
            break;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); width + 1];
        for c in 0..width {
            let col = std::mem::take(&mut cols[c]);
            let mut iter = col.into_iter();
            while let Some(x) = iter.next() {
                match (iter.next(), iter.next()) {
                    (Some(y), Some(z)) => {
                        let (s, cy) = full_adder(n, x, y, z);
                        next[c].push(s);
                        next[c + 1].push(cy);
                    }
                    (Some(y), None) => {
                        let (s, cy) = half_adder(n, x, y);
                        next[c].push(s);
                        next[c + 1].push(cy);
                        break;
                    }
                    (None, _) => {
                        next[c].push(x);
                        break;
                    }
                }
            }
        }
        next.truncate(width); // weight >= 2^width cannot occur for 2w-bit product
        cols = next;
    }
    // Final carry-propagate (ripple) addition over the two remaining rows.
    let mut outs = Vec::with_capacity(width);
    let mut carry: Option<NetId> = None;
    for col in cols.iter() {
        let bit = match (col.len(), carry) {
            (0, None) => n.constant(false),
            (0, Some(c)) => {
                carry = None;
                c
            }
            (1, None) => col[0],
            (1, Some(c)) => {
                let (s, cy) = half_adder(n, col[0], c);
                carry = Some(cy);
                s
            }
            (2, None) => {
                let (s, cy) = half_adder(n, col[0], col[1]);
                carry = Some(cy);
                s
            }
            (2, Some(c)) => {
                let (s, cy) = full_adder(n, col[0], col[1], c);
                carry = Some(cy);
                s
            }
            _ => unreachable!("columns reduced to <= 2 bits"),
        };
        outs.push(bit);
    }
    outs
}

/// Exact array multiplier: AND partial products summed row by row with
/// ripple-carry adders. Simple, deep, compact.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 16`.
pub fn array_multiplier(width: usize) -> ArithCircuit {
    assert!((1..=16).contains(&width), "width must be 1..=16");
    let mut n = Netlist::new(format!("mul{width}u_arr"));
    let (a, b) = declare_operands(&mut n, width);
    // Row-by-row accumulation.
    let mut acc: Vec<NetId> = Vec::new();
    let mut outs: Vec<NetId> = Vec::with_capacity(2 * width);
    for (j, &bj) in b.iter().enumerate() {
        let row: Vec<NetId> = a.iter().map(|&ai| n.and(ai, bj)).collect();
        if j == 0 {
            outs.push(row[0]);
            acc = row[1..].to_vec();
            continue;
        }
        // acc (width-1 bits) + row (width bits) -> low bit out, new acc.
        let mut new_acc = Vec::with_capacity(width);
        let mut carry: Option<NetId> = None;
        for (i, &x) in row.iter().enumerate().take(width) {
            let y = acc.get(i).copied();
            let (s, c) = match (y, carry) {
                (Some(y), Some(cin)) => full_adder(&mut n, x, y, cin),
                (Some(y), None) => half_adder(&mut n, x, y),
                (None, Some(cin)) => half_adder(&mut n, x, cin),
                (None, None) => (x, n.constant(false)),
            };
            carry = Some(c);
            new_acc.push(s);
        }
        outs.push(new_acc[0]);
        acc = new_acc[1..].to_vec();
        acc.push(carry.expect("width >= 1"));
    }
    outs.extend(acc);
    // width == 1 yields a single AND bit; pad the product to 2w bits.
    while outs.len() < 2 * width {
        let zero = n.constant(false);
        outs.push(zero);
    }
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Multiplier, width, n)
}

/// Exact Wallace-style tree multiplier: carry-save column reduction, flat
/// and fast, more wiring.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 16`.
pub fn wallace_multiplier(width: usize) -> ArithCircuit {
    assert!((1..=16).contains(&width), "width must be 1..=16");
    let mut n = Netlist::new(format!("mul{width}u_wal"));
    let (a, b) = declare_operands(&mut n, width);
    let cols = partial_products(&mut n, &a, &b, |_, _| true);
    let outs = reduce_columns(&mut n, cols);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Multiplier, width, n)
}

/// Truncated multiplier: partial products feeding the `k` least-significant
/// product columns are dropped (those outputs become constant 0).
///
/// # Panics
///
/// Panics if `width == 0`, `width > 16` or `k >= 2*width`.
pub fn truncated(width: usize, k: usize) -> ArithCircuit {
    assert!((1..=16).contains(&width), "width must be 1..=16");
    assert!(k < 2 * width, "cannot drop every product column");
    let mut n = Netlist::new(format!("mul{width}u_trunc{k}"));
    let (a, b) = declare_operands(&mut n, width);
    let cols = partial_products(&mut n, &a, &b, |i, j| i + j >= k);
    let outs = reduce_columns(&mut n, cols);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Multiplier, width, n)
}

/// Broken-array multiplier (BAM): partial products below the horizontal
/// break `hbl` (row index) *and* in columns left of the vertical break
/// `vbl` are omitted, thinning the array from the LSB side.
///
/// `keep(i, j)`: drop when `i + j < vbl` or (`j < hbl` and `i + j < vbl + hbl`).
///
/// # Panics
///
/// Panics if `width == 0`, `width > 16`, or the breaks exceed the array.
pub fn broken_array(width: usize, vbl: usize, hbl: usize) -> ArithCircuit {
    assert!((1..=16).contains(&width), "width must be 1..=16");
    assert!(vbl < 2 * width && hbl <= width, "break lines out of range");
    let mut n = Netlist::new(format!("mul{width}u_bam_v{vbl}h{hbl}"));
    let (a, b) = declare_operands(&mut n, width);
    let cols = partial_products(&mut n, &a, &b, |i, j| {
        i + j >= vbl && !(j < hbl && i + j < vbl + hbl)
    });
    let outs = reduce_columns(&mut n, cols);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Multiplier, width, n)
}

/// Underdesigned multiplier (Kulkarni-style): built from 2x2 blocks where
/// the approximate block computes `3*3 = 7` (3 output bits instead of 4).
/// `approx_mask` selects which of the `(width/2)^2` blocks are approximate
/// (LSB = block (0,0); row-major over (a-block, b-block)).
///
/// # Panics
///
/// Panics if `width` is not an even number in `2..=16`.
pub fn underdesigned(width: usize, approx_mask: u64) -> ArithCircuit {
    assert!(
        width.is_multiple_of(2) && (2..=16).contains(&width),
        "width must be even and 2..=16"
    );
    let blocks = width / 2;
    let mut n = Netlist::new(format!("mul{width}u_udm{approx_mask:x}"));
    let (a, b) = declare_operands(&mut n, width);
    let mut cols: Vec<Vec<NetId>> = vec![Vec::new(); 2 * width];
    for bi in 0..blocks {
        for bj in 0..blocks {
            let idx = bi * blocks + bj;
            let (a0, a1) = (a[2 * bi], a[2 * bi + 1]);
            let (b0, b1) = (b[2 * bj], b[2 * bj + 1]);
            let shift = 2 * (bi + bj);
            let approx = (approx_mask >> idx) & 1 == 1;
            // 2x2 product bits p0..p3 of a(2b) * b(2b).
            let p0 = n.and(a0, b0);
            let a0b1 = n.and(a0, b1);
            let a1b0 = n.and(a1, b0);
            let a1b1 = n.and(a1, b1);
            if approx {
                // Kulkarni block: p1 = a0b1 | a1b0, p2 = a1b1; 3*3 -> 7.
                let p1 = n.or(a0b1, a1b0);
                cols[shift].push(p0);
                cols[shift + 1].push(p1);
                cols[shift + 2].push(a1b1);
            } else {
                let p1 = n.xor(a0b1, a1b0);
                let c1 = n.and(a0b1, a1b0);
                let p2 = n.xor(a1b1, c1);
                let p3 = n.and(a1b1, c1);
                cols[shift].push(p0);
                cols[shift + 1].push(p1);
                cols[shift + 2].push(p2);
                cols[shift + 3].push(p3);
            }
        }
    }
    let outs = reduce_columns(&mut n, cols);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Multiplier, width, n)
}

/// Wallace multiplier whose columns below `k` are reduced with approximate
/// (carry-dropping OR) compression instead of exact counters.
///
/// # Panics
///
/// Panics if `width == 0`, `width > 16` or `k >= 2*width`.
pub fn approx_compressor(width: usize, k: usize) -> ArithCircuit {
    assert!((1..=16).contains(&width), "width must be 1..=16");
    assert!(k < 2 * width, "approximate columns out of range");
    let mut n = Netlist::new(format!("mul{width}u_acmp{k}"));
    let (a, b) = declare_operands(&mut n, width);
    let mut cols = partial_products(&mut n, &a, &b, |_, _| true);
    // Approximate reduction in the low columns: OR the bits together
    // (no carries produced) — mimics approximate 4:2 compressors.
    for col in cols.iter_mut().take(k) {
        if col.len() > 1 {
            let mut it = col.drain(..);
            let mut acc = it.next().expect("len > 1");
            for x in it {
                acc = n.or(acc, x);
            }
            *col = vec![acc];
        }
    }
    let outs = reduce_columns(&mut n, cols);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Multiplier, width, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::BatchEvaluator;

    fn check_exact(c: &ArithCircuit, exhaustive: bool) {
        let w = c.width();
        let mask = (1u64 << w) - 1;
        let pairs: Vec<(u64, u64)> = if exhaustive {
            (0..=mask)
                .flat_map(|a| (0..=mask).map(move |b| (a, b)))
                .collect()
        } else {
            let mut p = vec![(0, 0), (mask, mask), (1, mask), (mask, 1)];
            let mut s = 99u64;
            for _ in 0..2000 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                p.push(((s >> 10) & mask, (s >> 40) & mask));
            }
            p
        };
        let mut batch = BatchEvaluator::new(c);
        let got = batch.eval_pairs(&pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(got[i], a * b, "{}: {a}*{b}", c.name());
        }
    }

    #[test]
    fn array_multiplier_exact_small_widths() {
        for w in [1, 2, 3, 4, 5] {
            check_exact(&array_multiplier(w), true);
        }
    }

    #[test]
    fn array_multiplier_exact_8_16() {
        check_exact(&array_multiplier(8), false);
        check_exact(&array_multiplier(16), false);
    }

    #[test]
    fn wallace_multiplier_exact() {
        for w in [2, 3, 4] {
            check_exact(&wallace_multiplier(w), true);
        }
        check_exact(&wallace_multiplier(8), false);
        check_exact(&wallace_multiplier(12), false);
    }

    #[test]
    fn wallace_is_shallower_than_array() {
        let arr = array_multiplier(8);
        let wal = wallace_multiplier(8);
        assert!(
            afp_netlist::analyze::depth(wal.netlist()) < afp_netlist::analyze::depth(arr.netlist())
        );
    }

    #[test]
    fn truncated_drops_low_columns() {
        let c = truncated(8, 6);
        // Products confined to the low columns vanish.
        assert_eq!(c.eval(1, 1), 0);
        assert_eq!(c.eval(3, 5), 0);
        // High products mostly survive.
        let big = c.eval(255, 255);
        assert!(big > 60000, "got {big}");
        assert!(big <= 65025);
    }

    #[test]
    fn truncated_zero_is_exact() {
        check_exact(&truncated(8, 0), false);
    }

    #[test]
    fn broken_array_underestimates() {
        let c = broken_array(8, 5, 2);
        for (a, b) in [(255u64, 255u64), (100, 200), (13, 77)] {
            assert!(c.eval(a, b) <= a * b);
        }
    }

    #[test]
    fn underdesigned_exact_mask_zero() {
        check_exact(&underdesigned(8, 0), false);
        check_exact(&underdesigned(4, 0), true);
    }

    #[test]
    fn underdesigned_block_error_is_localized() {
        // One approximate block (0,0): only 3*3 on the low 2-bit digits errs.
        let c = underdesigned(4, 1);
        assert_eq!(c.eval(3, 3), 7); // the classic 3*3=7
        assert_eq!(c.eval(3, 2), 6); // unaffected
        assert_eq!(c.eval(15, 12), 180); // low digits of b are 0 -> exact
    }

    #[test]
    fn approx_compressor_underestimates_low_part() {
        let c = approx_compressor(8, 6);
        let mut max_err = 0i64;
        let mut s = 7u64;
        for _ in 0..500 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (a, b) = ((s >> 8) & 0xFF, (s >> 40) & 0xFF);
            let err = (a * b) as i64 - c.eval(a, b) as i64;
            assert!(err >= 0, "OR-compression cannot overestimate: {a}*{b}");
            max_err = max_err.max(err);
        }
        assert!(max_err > 0, "must actually be approximate");
    }

    #[test]
    fn approximate_multipliers_are_cheaper() {
        let exact = wallace_multiplier(8);
        let g = exact.netlist().num_logic_gates();
        for mut c in [
            truncated(8, 6),
            broken_array(8, 6, 3),
            underdesigned(8, 0xFFFF),
            approx_compressor(8, 8),
        ] {
            c.simplify();
            assert!(
                c.netlist().num_logic_gates() < g,
                "{} not cheaper: {} vs {g}",
                c.name(),
                c.netlist().num_logic_gates()
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn truncation_never_overestimates(a in 0u64..256, b in 0u64..256, k in 0usize..10) {
            let c = truncated(8, k);
            proptest::prop_assert!(c.eval(a, b) <= a * b);
        }

        #[test]
        fn udm_matches_exact_when_mask_zero(a in 0u64..64, b in 0u64..64) {
            let c = underdesigned(6, 0);
            proptest::prop_assert_eq!(c.eval(a, b), a * b);
        }
    }
}

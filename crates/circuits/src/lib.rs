//! Exact and approximate arithmetic circuit generators.
//!
//! This crate recreates, from scratch, the role the EvoApprox8b library
//! plays in the ApproxFPGAs paper: a large collection of gate-level
//! approximate adders and multipliers spanning a wide error/cost trade-off
//! space, at 8/12/16-bit operand widths.
//!
//! * [`arith`] — the [`ArithCircuit`] wrapper (word-level interface over a
//!   gate-level [`afp_netlist::Netlist`]) and batch evaluation helpers.
//! * [`adders`] — exact adder architectures (ripple-carry, carry-lookahead,
//!   carry-select, carry-skip) and approximate variants (LOA, truncated,
//!   no-carry, approximate-full-adder substitution, GeAr-style segmented).
//! * [`multipliers`] — exact array and Wallace-tree multipliers and
//!   approximate variants (truncated, broken-array, 2x2-block underdesigned,
//!   approximate-compressor trees).
//! * [`mutate`] — seeded, LSB-biased random netlist mutation, emulating the
//!   structural diversity of CGP-evolved circuits.
//! * [`library`] — enumeration of whole circuit libraries
//!   ([`LibrarySpec`] → `Vec<ArithCircuit>`) with behavioural dedup.
//! * [`store`] — persisting libraries as sealed [`afp_store`] files with
//!   structural dedup, and streaming them back lazily.
//! * [`source`] — the [`LibrarySource`] abstraction (generated-from-spec
//!   or streamed-from-store) feeding flows shard-at-a-time with bounded
//!   residency, plus the paper's full-scale corpus specs.
//! * [`soa`] — a small set of "state-of-the-art FPGA-tailored" multipliers
//!   used as comparison points in Fig. 1.
//!
//! # Example
//!
//! ```
//! use afp_circuits::adders::ripple_carry;
//!
//! let add8 = ripple_carry(8);
//! assert_eq!(add8.eval(200, 100), 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adders;
pub mod advanced_multipliers;
pub mod arith;
pub mod library;
pub mod multipliers;
pub mod mutate;
pub mod prefix_adders;
pub mod soa;
pub mod source;
pub mod spec;
pub mod store;

pub use arith::{ArithCircuit, ArithKind, BatchEvaluator};
pub use library::{build_library, build_library_with, LibrarySpec};
pub use source::{ensure_library, paper_full_specs, LibraryShards, LibrarySource};
pub use spec::from_spec_ref;
pub use store::{
    read_library, stream_library, write_library, write_library_specs, LibraryStream, WriteSummary,
};

//! Advanced multiplier architectures: Dadda reduction, radix-4 digit
//! multipliers, and the DRUM-style dynamic-range approximate multiplier.
//!
//! Like the prefix adders, these broaden the libraries' structural
//! diversity: Dadda/radix-4 change the reduction tree and partial-product
//! shape, and DRUM is a fundamentally different *approximation principle*
//! (operand segmentation instead of bit dropping), giving the ML models
//! a harder, more realistic estimation task.

use afp_netlist::{NetId, Netlist};

use crate::adders::{full_adder, half_adder};
use crate::arith::{ArithCircuit, ArithKind};

/// Exact Dadda multiplier: column reduction to the Dadda height sequence
/// (… 13, 9, 6, 4, 3, 2) using the minimum number of counters, then a
/// final carry-propagate adder.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 16`.
pub fn dadda_multiplier(width: usize) -> ArithCircuit {
    assert!((1..=16).contains(&width), "width must be 1..=16");
    let mut n = Netlist::new(format!("mul{width}u_dadda"));
    let a = n.add_inputs(width);
    let b = n.add_inputs(width);
    let mut cols: Vec<Vec<NetId>> = vec![Vec::new(); 2 * width];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = n.and(ai, bj);
            cols[i + j].push(pp);
        }
    }
    // Dadda stage heights: largest d_k below the current max height.
    let mut heights = vec![2usize];
    while *heights.last().expect("seeded") < width {
        let next = (heights.last().unwrap() * 3) / 2;
        heights.push(next);
    }
    for &target in heights.iter().rev() {
        let max_h = cols.iter().map(Vec::len).max().unwrap_or(0);
        if max_h <= target {
            continue;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); cols.len() + 1];
        for c in 0..cols.len() {
            let mut col = std::mem::take(&mut cols[c]);
            // Pull in carries already produced into this column.
            col.append(&mut next[c]);
            // Reduce just enough to reach `target` after receiving carries
            // from column c-1 (approximation of the exact Dadda schedule:
            // reduce while the column exceeds the target).
            while col.len() > target {
                if col.len() == target + 1 {
                    let x = col.pop().expect("len>target");
                    let y = col.pop().expect("len>target");
                    let (s, cy) = half_adder(&mut n, x, y);
                    col.push(s);
                    next[c + 1].push(cy);
                } else {
                    let x = col.pop().expect("len>target");
                    let y = col.pop().expect("len>target");
                    let z = col.pop().expect("len>target");
                    let (s, cy) = full_adder(&mut n, x, y, z);
                    col.push(s);
                    next[c + 1].push(cy);
                }
            }
            cols[c] = col;
        }
        // Merge any leftover carries beyond the last column (cannot occur
        // for a 2w-bit product, but keep the shape safe).
        next.truncate(cols.len());
        for (c, mut extra) in next.into_iter().enumerate() {
            cols[c].append(&mut extra);
        }
    }
    // Final CPA over the (≤ 2)-high columns.
    let mut outs = Vec::with_capacity(2 * width);
    let mut carry: Option<NetId> = None;
    for col in &cols {
        let bit = match (col.len(), carry) {
            (0, None) => n.constant(false),
            (0, Some(c)) => {
                carry = None;
                c
            }
            (1, None) => col[0],
            (1, Some(c)) => {
                let (s, cy) = half_adder(&mut n, col[0], c);
                carry = Some(cy);
                s
            }
            (2, None) => {
                let (s, cy) = half_adder(&mut n, col[0], col[1]);
                carry = Some(cy);
                s
            }
            (2, Some(c)) => {
                let (s, cy) = full_adder(&mut n, col[0], col[1], c);
                carry = Some(cy);
                s
            }
            (k, _) => unreachable!("column of height {k} after Dadda reduction"),
        };
        outs.push(bit);
    }
    outs.truncate(2 * width);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Multiplier, width, n)
}

/// Exact radix-4 multiplier: `b` is consumed two bits per digit; the
/// partial products `{0, a, 2a, 3a}` are selected by mux trees (with `3a`
/// shared from one precomputed adder), halving the number of partial
/// products relative to an array multiplier.
///
/// # Panics
///
/// Panics if `width` is not an even number in `2..=16`.
pub fn radix4_multiplier(width: usize) -> ArithCircuit {
    assert!(
        width.is_multiple_of(2) && (2..=16).contains(&width),
        "width must be even and 2..=16"
    );
    let mut n = Netlist::new(format!("mul{width}u_r4"));
    let a = n.add_inputs(width);
    let b = n.add_inputs(width);
    let zero = n.constant(false);
    // Precompute 3a = a + (a << 1), width+2 bits.
    let mut three_a: Vec<NetId> = Vec::with_capacity(width + 2);
    {
        let mut carry = zero;
        three_a.push(a[0]); // bit 0 of a + 2a
        for i in 1..=width {
            let x = if i < width { a[i] } else { zero };
            let y = a[i - 1]; // bit i of (a << 1)
            let (s, c) = full_adder(&mut n, x, y, carry);
            three_a.push(s);
            carry = c;
        }
        three_a.push(carry);
    }
    // Column matrix from the digit partial products.
    let mut cols: Vec<Vec<NetId>> = vec![Vec::new(); 2 * width + 2];
    for digit in 0..width / 2 {
        let b0 = b[2 * digit];
        let b1 = b[2 * digit + 1];
        let shift = 2 * digit;
        // pp bit t = mux(b1, mux(b0, 0, a[t]), mux(b0, 2a[t], 3a[t]))
        for t in 0..width + 2 {
            let a_t = if t < width { a[t] } else { zero };
            let a2_t = if t >= 1 && t - 1 < width {
                a[t - 1]
            } else {
                zero
            };
            let a3_t = three_a[t];
            let low = n.mux(b0, zero, a_t);
            let high = n.mux(b0, a2_t, a3_t);
            let pp = n.mux(b1, low, high);
            if shift + t < cols.len() {
                cols[shift + t].push(pp);
            }
        }
    }
    cols.truncate(2 * width);
    let outs = reduce_to_product(&mut n, cols, 2 * width);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Multiplier, width, n)
}

/// Carry-save reduce a column matrix and finish with a ripple CPA,
/// producing exactly `out_width` product bits.
fn reduce_to_product(n: &mut Netlist, mut cols: Vec<Vec<NetId>>, out_width: usize) -> Vec<NetId> {
    loop {
        let worst = cols.iter().map(Vec::len).max().unwrap_or(0);
        if worst <= 2 {
            break;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); cols.len() + 1];
        for c in 0..cols.len() {
            let col = std::mem::take(&mut cols[c]);
            let mut iter = col.into_iter();
            while let Some(x) = iter.next() {
                match (iter.next(), iter.next()) {
                    (Some(y), Some(z)) => {
                        let (s, cy) = full_adder(n, x, y, z);
                        next[c].push(s);
                        next[c + 1].push(cy);
                    }
                    (Some(y), None) => {
                        let (s, cy) = half_adder(n, x, y);
                        next[c].push(s);
                        next[c + 1].push(cy);
                        break;
                    }
                    (None, _) => {
                        next[c].push(x);
                        break;
                    }
                }
            }
        }
        next.truncate(cols.len());
        cols = next;
    }
    let mut outs = Vec::with_capacity(out_width);
    let mut carry: Option<NetId> = None;
    for col in cols.iter().take(out_width) {
        let bit = match (col.len(), carry) {
            (0, None) => n.constant(false),
            (0, Some(c)) => {
                carry = None;
                c
            }
            (1, None) => col[0],
            (1, Some(c)) => {
                let (s, cy) = half_adder(n, col[0], c);
                carry = Some(cy);
                s
            }
            (2, None) => {
                let (s, cy) = half_adder(n, col[0], col[1]);
                carry = Some(cy);
                s
            }
            (2, Some(c)) => {
                let (s, cy) = full_adder(n, col[0], col[1], c);
                carry = Some(cy);
                s
            }
            _ => unreachable!("columns reduced to <= 2"),
        };
        outs.push(bit);
    }
    while outs.len() < out_width {
        let zero = n.constant(false);
        outs.push(zero);
    }
    outs
}

/// DRUM-style dynamic-range unbiased multiplier: each operand is reduced
/// to its top `k` bits starting at the leading one (LSB of the segment
/// forced to 1 for unbiasing), the `k x k` product is computed exactly
/// and shifted back into place.
///
/// Large-magnitude operands keep ~`k` significant bits of accuracy, so
/// the *relative* error is bounded, which is DRUM's signature property.
///
/// # Panics
///
/// Panics if `width > 16`, `k < 2` or `k > width`.
pub fn drum(width: usize, k: usize) -> ArithCircuit {
    assert!((1..=16).contains(&width), "width must be 1..=16");
    assert!((2..=width).contains(&k), "segment must be 2..=width");
    let mut n = Netlist::new(format!("mul{width}u_drum{k}"));
    let a = n.add_inputs(width);
    let b = n.add_inputs(width);
    let zero = n.constant(false);
    let one = n.constant(true);

    // Leading-one detection + segment extraction + exponent, per operand.
    let segment = |n: &mut Netlist, x: &[NetId]| -> (Vec<NetId>, Vec<NetId>) {
        // one_hot[i] = x[i] & !(x has a 1 above i)
        let mut any_above = zero;
        let mut one_hot = vec![zero; width];
        for i in (0..width).rev() {
            let not_above = n.not(any_above);
            one_hot[i] = n.and(x[i], not_above);
            any_above = n.or(any_above, x[i]);
        }
        // exponent e = max(leading_pos - (k-1), 0): the shift applied to
        // the segment. Binary encode via OR trees over one_hot positions.
        let ebits = (usize::BITS - width.leading_zeros()) as usize;
        let mut exp = vec![zero; ebits];
        for (i, &oh) in one_hot.iter().enumerate() {
            let e = i.saturating_sub(k - 1);
            for (bit, slot) in exp.iter_mut().enumerate() {
                if (e >> bit) & 1 == 1 {
                    *slot = n.or(*slot, oh);
                }
            }
        }
        // Segment bits: seg[t] = OR_i one_hot[i] & x[i - (k-1) + t]
        // for i >= k-1; for small operands (leading one below k-1) the
        // operand itself is already the segment.
        let mut seg = vec![zero; k];
        for (i, &oh) in one_hot.iter().enumerate() {
            if i >= k - 1 {
                for t in 0..k {
                    let src = x[i + 1 - k + t];
                    let term = n.and(oh, src);
                    seg[t] = n.or(seg[t], term);
                }
            } else {
                // Leading one below the segment width: pass x through.
                for (t, slot) in seg.iter_mut().enumerate().take(i + 1) {
                    let term = n.and(oh, x[t]);
                    *slot = n.or(*slot, term);
                }
            }
        }
        // Unbias: force segment LSB to 1 whenever the exponent is nonzero
        // (i.e. bits were actually dropped).
        let mut nonzero_exp = zero;
        for &e in &exp {
            nonzero_exp = n.or(nonzero_exp, e);
        }
        let forced = n.or(seg[0], nonzero_exp);
        seg[0] = n.mux(nonzero_exp, seg[0], forced);
        (seg, exp)
    };
    let (seg_a, exp_a) = segment(&mut n, &a);
    let (seg_b, exp_b) = segment(&mut n, &b);

    // Exact k x k product of the segments.
    let mut cols: Vec<Vec<NetId>> = vec![Vec::new(); 2 * k];
    for (i, &ai) in seg_a.iter().enumerate() {
        for (j, &bj) in seg_b.iter().enumerate() {
            let pp = n.and(ai, bj);
            cols[i + j].push(pp);
        }
    }
    let prod = reduce_to_product(&mut n, cols, 2 * k);

    // Total shift = exp_a + exp_b (small adder over exponent bits).
    let ebits = exp_a.len();
    let mut shift = Vec::with_capacity(ebits + 1);
    let mut carry = zero;
    for i in 0..ebits {
        let (s, c) = full_adder(&mut n, exp_a[i], exp_b[i], carry);
        shift.push(s);
        carry = c;
    }
    shift.push(carry);
    let _ = one;

    // Barrel shifter: result = prod << shift, over 2*width output bits.
    let mut stage: Vec<NetId> = (0..2 * width)
        .map(|t| if t < prod.len() { prod[t] } else { zero })
        .collect();
    for (bit, &sbit) in shift.iter().enumerate() {
        let amount = 1usize << bit;
        if amount >= 2 * width {
            break;
        }
        let prev = stage.clone();
        for (t, slot) in stage.iter_mut().enumerate() {
            let shifted = if t >= amount { prev[t - amount] } else { zero };
            *slot = n.mux(sbit, prev[t], shifted);
        }
    }
    n.set_outputs(stage);
    ArithCircuit::new(ArithKind::Multiplier, width, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::BatchEvaluator;
    use crate::multipliers::wallace_multiplier;

    fn check_exact(c: &ArithCircuit, exhaustive: bool) {
        let w = c.width();
        let mask = (1u64 << w) - 1;
        let pairs: Vec<(u64, u64)> = if exhaustive {
            (0..=mask)
                .flat_map(|x| (0..=mask).map(move |y| (x, y)))
                .collect()
        } else {
            let mut p = vec![(0, 0), (mask, mask), (1, mask)];
            let mut s = 17u64;
            for _ in 0..3000 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(11);
                p.push(((s >> 9) & mask, (s >> 41) & mask));
            }
            p
        };
        let mut batch = BatchEvaluator::new(c);
        let got = batch.eval_pairs(&pairs);
        for (i, &(x, y)) in pairs.iter().enumerate() {
            assert_eq!(got[i], x * y, "{}: {x}*{y}", c.name());
        }
    }

    #[test]
    fn dadda_is_exact() {
        for w in [2, 3, 4, 5] {
            check_exact(&dadda_multiplier(w), true);
        }
        check_exact(&dadda_multiplier(8), false);
        check_exact(&dadda_multiplier(12), false);
    }

    #[test]
    fn radix4_is_exact() {
        for w in [2, 4] {
            check_exact(&radix4_multiplier(w), true);
        }
        check_exact(&radix4_multiplier(8), false);
        check_exact(&radix4_multiplier(16), false);
    }

    #[test]
    fn dadda_structurally_differs_from_wallace() {
        let d = dadda_multiplier(8);
        let w = wallace_multiplier(8);
        // Same function, different reduction schedule => different netlist.
        assert_ne!(d.netlist().num_logic_gates(), w.netlist().num_logic_gates());
    }

    #[test]
    fn drum_is_exact_for_small_operands() {
        let c = drum(8, 4);
        // Operands that fit in the k-bit segment are multiplied exactly.
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert_eq!(c.eval(x, y), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn drum_relative_error_is_bounded() {
        let c = drum(8, 4);
        let mut worst_rel: f64 = 0.0;
        for x in 1..=255u64 {
            for y in 1..=255u64 {
                let exact = (x * y) as f64;
                let got = c.eval(x, y) as f64;
                worst_rel = worst_rel.max((got - exact).abs() / exact);
            }
        }
        // DRUM(k): each operand errs by at most ~2^-(k-1), so the product's
        // worst relative error is (1 + 2^-(k-1))^2 - 1 ≈ 26.6% for k = 4.
        assert!(worst_rel < 0.27, "relative error {worst_rel}");
        assert!(worst_rel > 0.1, "must actually approximate");
    }

    #[test]
    fn drum_is_roughly_unbiased() {
        let c = drum(8, 4);
        let mut sum = 0f64;
        let mut n_pairs = 0f64;
        for x in (1..=255u64).step_by(3) {
            for y in (1..=255u64).step_by(3) {
                sum += c.eval(x, y) as f64 - (x * y) as f64;
                n_pairs += 1.0;
            }
        }
        let mean_err = sum / n_pairs;
        // Mean absolute product is ~16256; the unbiasing should keep the
        // mean error within ~1.5% of it.
        assert!(
            mean_err.abs() < 250.0,
            "bias too large for an unbiased design: {mean_err}"
        );
    }

    #[test]
    fn drum_is_cheaper_than_exact_after_simplify() {
        let mut d = drum(8, 3);
        d.simplify();
        let mut w = wallace_multiplier(8);
        w.simplify();
        assert!(
            d.netlist().num_logic_gates() < w.netlist().num_logic_gates() * 2,
            "DRUM should stay in the same cost class"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn radix4_and_dadda_agree(a in 0u64..256, b in 0u64..256) {
            proptest::prop_assert_eq!(radix4_multiplier(8).eval(a, b), a * b);
            proptest::prop_assert_eq!(dadda_multiplier(8).eval(a, b), a * b);
        }
    }
}

//! "State-of-the-art FPGA-tailored" comparison multipliers for Fig. 1.
//!
//! The paper compares the EvoApprox 8x8 multipliers against the manually
//! LUT-optimized approximate multipliers of Ullah et al. (DAC'18) and finds
//! the latter dominated. Those designs are hand-crafted for a specific
//! fabric; as a substitution we provide a small family with the same design
//! recipe — coarse 4x4/2x2 block decompositions with approximate low blocks
//! and a truncated correction — which sit in the same "few points, moderate
//! error, moderate cost" region rather than on the evolved pareto front.

use crate::arith::ArithCircuit;
#[cfg(test)]
use crate::arith::ArithKind;
use crate::multipliers;

/// The comparison set of "SoA FPGA" 8x8 approximate multipliers.
///
/// Returns a handful of fixed designs (names prefixed `soa_`), mirroring
/// the handful of published design points in the paper's Fig. 1.
pub fn soa_fpga_multipliers8() -> Vec<ArithCircuit> {
    let mut out = Vec::new();
    // Block-based designs: all 2x2 blocks approximate except the top rows.
    for (i, mask) in [0x0000_0007u64, 0x0000_001F, 0x0000_007F, 0x0000_0333]
        .iter()
        .enumerate()
    {
        let mut c = multipliers::underdesigned(8, *mask);
        c.simplify();
        c.set_name(format!("soa_fpga_m{}", i + 1));
        out.push(c);
    }
    // Truncation-with-correction style points.
    for (i, k) in [4usize, 6].iter().enumerate() {
        let mut c = multipliers::broken_array(8, *k, 2);
        c.simplify();
        c.set_name(format!("soa_fpga_m{}", out.len() + i + 1));
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soa_set_is_small_and_well_formed() {
        let set = soa_fpga_multipliers8();
        assert_eq!(set.len(), 6);
        for c in &set {
            assert_eq!(c.kind(), ArithKind::Multiplier);
            assert_eq!(c.width(), 8);
            assert!(c.name().starts_with("soa_fpga_m"));
            c.netlist().validate().unwrap();
            // Approximate but not garbage.
            let err = (c.eval(200, 200) as i64 - 40000i64).unsigned_abs();
            assert!(err < 20000, "{} err {err}", c.name());
        }
    }
}

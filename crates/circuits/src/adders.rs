//! Adder generators: exact architectures and approximate variants.
//!
//! All generators return an [`ArithCircuit`] with the standard interface
//! `a[w], b[w] → s[w+1]` (LSB-first). Exact architectures differ in
//! structure (and therefore in ASIC/FPGA cost) but not in function; the
//! approximate variants trade accuracy for cost and are the raw material of
//! the circuit libraries.

use afp_netlist::{NetId, Netlist};

use crate::arith::{ArithCircuit, ArithKind};

/// Append a full adder to `n`; returns `(sum, carry)`.
pub(crate) fn full_adder(n: &mut Netlist, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
    let axb = n.xor(a, b);
    let s = n.xor(axb, cin);
    let c = n.maj(a, b, cin);
    (s, c)
}

/// Append a half adder to `n`; returns `(sum, carry)`.
pub(crate) fn half_adder(n: &mut Netlist, a: NetId, b: NetId) -> (NetId, NetId) {
    (n.xor(a, b), n.and(a, b))
}

fn declare_operands(n: &mut Netlist, width: usize) -> (Vec<NetId>, Vec<NetId>) {
    let a = n.add_inputs(width);
    let b = n.add_inputs(width);
    (a, b)
}

/// Exact ripple-carry adder: minimal area, `O(w)` depth.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 32`.
pub fn ripple_carry(width: usize) -> ArithCircuit {
    assert!((1..=32).contains(&width), "width must be 1..=32");
    let mut n = Netlist::new(format!("add{width}u_rca"));
    let (a, b) = declare_operands(&mut n, width);
    let mut outs = Vec::with_capacity(width + 1);
    let (s0, mut carry) = half_adder(&mut n, a[0], b[0]);
    outs.push(s0);
    for i in 1..width {
        let (s, c) = full_adder(&mut n, a[i], b[i], carry);
        outs.push(s);
        carry = c;
    }
    outs.push(carry);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Adder, width, n)
}

/// Balanced AND reduction of a non-empty net list.
fn and_reduce(n: &mut Netlist, nets: &[NetId]) -> NetId {
    reduce(n, nets, Netlist::and)
}

/// Balanced OR reduction of a non-empty net list.
fn or_reduce(n: &mut Netlist, nets: &[NetId]) -> NetId {
    reduce(n, nets, Netlist::or)
}

fn reduce(
    n: &mut Netlist,
    nets: &[NetId],
    op: impl Fn(&mut Netlist, NetId, NetId) -> NetId,
) -> NetId {
    assert!(!nets.is_empty(), "reduction over an empty list");
    let mut layer: Vec<NetId> = nets.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                op(n, pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    layer[0]
}

/// Exact carry-lookahead adder with 4-bit groups: the lookahead products
/// within a group are expanded as balanced AND/OR trees, so carry logic is
/// flatter than ripple at the cost of extra area. Groups themselves are
/// chained (block-CLA).
///
/// # Panics
///
/// Panics if `width == 0` or `width > 32`.
pub fn carry_lookahead(width: usize) -> ArithCircuit {
    assert!((1..=32).contains(&width), "width must be 1..=32");
    let mut n = Netlist::new(format!("add{width}u_cla"));
    let (a, b) = declare_operands(&mut n, width);
    let p: Vec<NetId> = (0..width).map(|i| n.xor(a[i], b[i])).collect();
    let g: Vec<NetId> = (0..width).map(|i| n.and(a[i], b[i])).collect();
    let mut carries = Vec::with_capacity(width + 1);
    let zero = n.constant(false);
    carries.push(zero);
    for group_start in (0..width).step_by(4) {
        let cin = *carries.last().expect("carry chain is seeded");
        let hi = (group_start + 4).min(width);
        for i in group_start..hi {
            // c_{i+1} = G | cin & P where G/P are the group generate/
            // propagate up to bit i, expanded as balanced trees so the
            // carry-in joins through just one AND and one OR level.
            let mut terms: Vec<NetId> = vec![g[i]];
            for j in group_start..i {
                let mut prod: Vec<NetId> = vec![g[j]];
                prod.extend_from_slice(&p[j + 1..=i]);
                terms.push(and_reduce(&mut n, &prod));
            }
            let group_generate = or_reduce(&mut n, &terms);
            let group_propagate = and_reduce(&mut n, &p[group_start..=i]);
            let cin_term = n.and(cin, group_propagate);
            carries.push(n.or(group_generate, cin_term));
        }
    }
    let mut outs: Vec<NetId> = (0..width).map(|i| n.xor(p[i], carries[i])).collect();
    outs.push(carries[width]);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Adder, width, n)
}

/// Exact carry-select adder with fixed block size `4`: duplicated blocks
/// computed for both carry-in values, selected by mux.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 32`.
pub fn carry_select(width: usize) -> ArithCircuit {
    assert!((1..=32).contains(&width), "width must be 1..=32");
    let block = 4usize;
    let mut n = Netlist::new(format!("add{width}u_csel"));
    let (a, b) = declare_operands(&mut n, width);
    let mut outs = Vec::with_capacity(width + 1);
    // First block is a plain ripple block with cin = 0.
    let (s0, mut carry) = half_adder(&mut n, a[0], b[0]);
    outs.push(s0);
    let first_hi = block.min(width);
    for i in 1..first_hi {
        let (s, c) = full_adder(&mut n, a[i], b[i], carry);
        outs.push(s);
        carry = c;
    }
    let mut pos = first_hi;
    while pos < width {
        let hi = (pos + block).min(width);
        // Compute the block twice: cin=0 and cin=1.
        let zero = n.constant(false);
        let one = n.constant(true);
        let mut sums0 = Vec::new();
        let mut sums1 = Vec::new();
        let (mut c0, mut c1) = (zero, one);
        for i in pos..hi {
            let (s, c) = full_adder(&mut n, a[i], b[i], c0);
            sums0.push(s);
            c0 = c;
            let (s, c) = full_adder(&mut n, a[i], b[i], c1);
            sums1.push(s);
            c1 = c;
        }
        for k in 0..(hi - pos) {
            outs.push(n.mux(carry, sums0[k], sums1[k]));
        }
        carry = n.mux(carry, c0, c1);
        pos = hi;
    }
    outs.push(carry);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Adder, width, n)
}

/// Exact carry-skip adder with fixed block size `4`: ripple blocks with a
/// group-propagate bypass mux.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 32`.
pub fn carry_skip(width: usize) -> ArithCircuit {
    assert!((1..=32).contains(&width), "width must be 1..=32");
    let block = 4usize;
    let mut n = Netlist::new(format!("add{width}u_cskip"));
    let (a, b) = declare_operands(&mut n, width);
    let mut outs = Vec::with_capacity(width + 1);
    let mut carry = n.constant(false);
    let mut pos = 0usize;
    while pos < width {
        let hi = (pos + block).min(width);
        let block_cin = carry;
        let mut rip = block_cin;
        let mut group_p: Option<NetId> = None;
        for i in pos..hi {
            let p = n.xor(a[i], b[i]);
            group_p = Some(match group_p {
                None => p,
                Some(gp) => n.and(gp, p),
            });
            let (s, c) = full_adder(&mut n, a[i], b[i], rip);
            outs.push(s);
            rip = c;
        }
        // Skip mux: if every position propagates, the block's carry-out is
        // its carry-in.
        let gp = group_p.expect("block is non-empty");
        carry = n.mux(gp, rip, block_cin);
        pos = hi;
    }
    outs.push(carry);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Adder, width, n)
}

/// Lower-part OR adder (LOA): the low `k` sum bits are `a|b`, the upper part
/// is an exact ripple adder seeded with `a[k-1] & b[k-1]` as carry-in.
///
/// # Panics
///
/// Panics if `width == 0`, `width > 32` or `k > width`.
pub fn loa(width: usize, k: usize) -> ArithCircuit {
    assert!((1..=32).contains(&width), "width must be 1..=32");
    assert!(k <= width, "approximate part must fit the operand");
    if k == 0 {
        let mut c = ripple_carry(width);
        c.set_name(format!("add{width}u_loa0"));
        return c;
    }
    let mut n = Netlist::new(format!("add{width}u_loa{k}"));
    let (a, b) = declare_operands(&mut n, width);
    let mut outs = Vec::with_capacity(width + 1);
    for i in 0..k {
        outs.push(n.or(a[i], b[i]));
    }
    let mut carry = n.and(a[k - 1], b[k - 1]);
    for i in k..width {
        let (s, c) = full_adder(&mut n, a[i], b[i], carry);
        outs.push(s);
        carry = c;
    }
    outs.push(carry);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Adder, width, n)
}

/// Truncated adder: the low `k` sum bits are constant `0` and no carry is
/// generated from the truncated part; the upper part is exact.
///
/// # Panics
///
/// Panics if `width == 0`, `width > 32` or `k > width`.
pub fn truncated(width: usize, k: usize) -> ArithCircuit {
    assert!((1..=32).contains(&width), "width must be 1..=32");
    assert!(k <= width, "truncation must fit the operand");
    let mut n = Netlist::new(format!("add{width}u_trunc{k}"));
    let (a, b) = declare_operands(&mut n, width);
    let zero = n.constant(false);
    let mut outs = vec![zero; k];
    let mut carry = zero;
    for i in k..width {
        let (s, c) = full_adder(&mut n, a[i], b[i], carry);
        outs.push(s);
        carry = c;
    }
    outs.push(carry);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Adder, width, n)
}

/// No-carry adder: the low `k` bits are `a^b` (carry chain cut), upper part
/// exact with zero carry-in.
///
/// # Panics
///
/// Panics if `width == 0`, `width > 32` or `k > width`.
pub fn no_carry(width: usize, k: usize) -> ArithCircuit {
    assert!((1..=32).contains(&width), "width must be 1..=32");
    assert!(k <= width, "approximate part must fit the operand");
    let mut n = Netlist::new(format!("add{width}u_nca{k}"));
    let (a, b) = declare_operands(&mut n, width);
    let mut outs: Vec<NetId> = (0..k).map(|i| n.xor(a[i], b[i])).collect();
    let mut carry = n.constant(false);
    for i in k..width {
        let (s, c) = full_adder(&mut n, a[i], b[i], carry);
        outs.push(s);
        carry = c;
    }
    outs.push(carry);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Adder, width, n)
}

/// The approximate full-adder cell substituted by [`afa_substituted`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ApproxFa {
    /// `sum = cin`, carry exact — approximates the sum only.
    SumIsCin,
    /// `sum = a|b`, `carry = a&b` — ignores the incoming carry.
    IgnoreCin,
    /// Exact sum, `carry = b` — cheap skewed carry.
    CarryIsB,
}

impl ApproxFa {
    /// All variants, for library enumeration.
    pub const ALL: [ApproxFa; 3] = [ApproxFa::SumIsCin, ApproxFa::IgnoreCin, ApproxFa::CarryIsB];

    fn mnemonic(&self) -> &'static str {
        match self {
            ApproxFa::SumIsCin => "sic",
            ApproxFa::IgnoreCin => "ign",
            ApproxFa::CarryIsB => "cib",
        }
    }

    fn build(&self, n: &mut Netlist, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        match self {
            ApproxFa::SumIsCin => {
                let c = n.maj(a, b, cin);
                (cin, c)
            }
            ApproxFa::IgnoreCin => (n.or(a, b), n.and(a, b)),
            ApproxFa::CarryIsB => {
                let axb = n.xor(a, b);
                let s = n.xor(axb, cin);
                (s, b)
            }
        }
    }
}

/// Ripple adder whose lowest `k` positions use the approximate full-adder
/// cell `variant` (in the style of the approximate mirror adder families).
///
/// # Panics
///
/// Panics if `width == 0`, `width > 32` or `k > width`.
pub fn afa_substituted(width: usize, k: usize, variant: ApproxFa) -> ArithCircuit {
    assert!((1..=32).contains(&width), "width must be 1..=32");
    assert!(k <= width, "approximate part must fit the operand");
    let mut n = Netlist::new(format!("add{width}u_afa_{}{k}", variant.mnemonic()));
    let (a, b) = declare_operands(&mut n, width);
    let mut outs = Vec::with_capacity(width + 1);
    let mut carry = n.constant(false);
    for i in 0..width {
        let (s, c) = if i < k {
            variant.build(&mut n, a[i], b[i], carry)
        } else {
            full_adder(&mut n, a[i], b[i], carry)
        };
        outs.push(s);
        carry = c;
    }
    outs.push(carry);
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Adder, width, n)
}

/// GeAr-style segmented adder: result bits are produced by overlapping
/// sub-adders of `r` result bits with `p` previous ("prediction") bits, with
/// no global carry chain.
///
/// `gear(width, r, p)` with `r + p >= 2`; the classic notation GeAr(w, R, P).
///
/// # Panics
///
/// Panics if `width == 0`, `width > 32`, `r == 0` or `r + p > width`.
pub fn gear(width: usize, r: usize, p: usize) -> ArithCircuit {
    assert!((1..=32).contains(&width), "width must be 1..=32");
    assert!(r >= 1 && r + p <= width, "invalid GeAr segmentation");
    let mut n = Netlist::new(format!("add{width}u_gear_r{r}p{p}"));
    let (a, b) = declare_operands(&mut n, width);
    let mut outs: Vec<Option<NetId>> = vec![None; width + 1];
    let zero = n.constant(false);
    // First sub-adder covers bits [0, r+p).
    let mut base = 0usize;
    let mut first = true;
    let mut last_carry = zero;
    while base < width {
        let lo = if first { 0 } else { base - p };
        // The first sub-adder yields r+p result bits, later ones r each.
        let hi = if first {
            (r + p).min(width)
        } else {
            (base + r).min(width)
        };
        let mut carry = zero;
        for i in lo..hi {
            let (s, c) = full_adder(&mut n, a[i], b[i], carry);
            carry = c;
            // Keep result bits only for the sub-adder's own window
            // [base, hi); prediction bits are recomputed, not kept.
            if i >= base || first {
                outs[i] = Some(s);
            }
        }
        last_carry = carry;
        base = hi;
        first = false;
    }
    outs[width] = Some(last_carry);
    let outs: Vec<NetId> = outs
        .into_iter()
        .map(|o| o.expect("all result bits covered"))
        .collect();
    n.set_outputs(outs);
    ArithCircuit::new(ArithKind::Adder, width, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::BatchEvaluator;

    fn assert_exact(c: &ArithCircuit) {
        let w = c.width();
        let mask = (1u64 << w) - 1;
        let pairs: Vec<(u64, u64)> = if w <= 5 {
            (0..=mask)
                .flat_map(|a| (0..=mask).map(move |b| (a, b)))
                .collect()
        } else {
            // Corners plus a deterministic sample.
            let mut p = vec![(0, 0), (mask, mask), (1, mask), (mask, 1)];
            let mut s = 12345u64;
            for _ in 0..2000 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                p.push(((s >> 10) & mask, (s >> 40) & mask));
            }
            p
        };
        let mut batch = BatchEvaluator::new(c);
        let got = batch.eval_pairs(&pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(got[i], a + b, "{}: {a}+{b}", c.name());
        }
    }

    #[test]
    fn exact_adders_are_exact() {
        for w in [1, 3, 4, 5, 8, 12, 16] {
            assert_exact(&ripple_carry(w));
            assert_exact(&carry_lookahead(w));
            assert_exact(&carry_select(w));
            assert_exact(&carry_skip(w));
        }
    }

    #[test]
    fn architectures_differ_structurally() {
        let rca = ripple_carry(16);
        let cla = carry_lookahead(16);
        assert!(cla.netlist().num_logic_gates() > rca.netlist().num_logic_gates());
        assert!(
            afp_netlist::analyze::depth(cla.netlist()) < afp_netlist::analyze::depth(rca.netlist())
        );
    }

    #[test]
    fn loa_low_bits_are_or() {
        let c = loa(8, 4);
        // 0b1111 | 0b0001 in the low nibble; high nibble exact.
        assert_eq!(c.eval(0x0F, 0x01) & 0xF, 0xF);
        // Carry from position k-1 is a&b.
        assert_eq!(c.eval(0x08, 0x08), 0x18); // or() low = 8, carry-in 1 -> 0x10 + 8
    }

    #[test]
    fn loa_zero_is_exact() {
        assert_exact(&loa(8, 0));
    }

    #[test]
    fn truncated_zeroes_low_bits() {
        let c = truncated(8, 3);
        assert_eq!(c.eval(0xFF, 0x00) & 0x7, 0);
        assert_eq!(c.eval(0xF8, 0x08), 0x100);
    }

    #[test]
    fn no_carry_cuts_chain() {
        let c = no_carry(8, 8);
        assert_eq!(c.eval(0xFF, 0x01), 0xFE); // xor only
    }

    #[test]
    fn afa_variants_approximate_low_bits_only() {
        for v in ApproxFa::ALL {
            let c = afa_substituted(8, 2, v);
            // Errors bounded: |err| < 2^(k+1) for these cells.
            for (a, b) in [(3u64, 5u64), (255, 255), (170, 85), (9, 200)] {
                let err = (c.eval(a, b) as i64 - (a + b) as i64).unsigned_abs();
                assert!(err < 8, "{v:?}: {a}+{b} err {err}");
            }
        }
    }

    #[test]
    fn gear_matches_exact_on_carry_free_operands() {
        let c = gear(8, 2, 2);
        // Operand pairs with no long carry chains are exact.
        assert_eq!(c.eval(0x55, 0x22), 0x77);
        assert_eq!(c.eval(0, 0xFF), 0xFF);
    }

    #[test]
    fn gear_errs_only_on_long_carries() {
        let c = gear(8, 2, 2);
        let mut worst = 0i64;
        for a in 0..=255u64 {
            for b in 0..=255u64 {
                let err = (c.eval(a, b) as i64 - (a + b) as i64).abs();
                worst = worst.max(err);
            }
        }
        assert!(worst > 0, "GeAr(2,2) must be approximate");
        assert!(worst <= 256, "errors stay bounded, got {worst}");
    }

    #[test]
    fn approximate_adders_are_cheaper() {
        let exact = ripple_carry(16);
        for c in [loa(16, 6), truncated(16, 6), no_carry(16, 6)] {
            assert!(
                c.netlist().num_logic_gates() < exact.netlist().num_logic_gates(),
                "{} not cheaper",
                c.name()
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn loa_error_is_bounded_by_2k(a in 0u64..256, b in 0u64..256, k in 0usize..=8) {
            let c = loa(8, k);
            let err = (c.eval(a, b) as i64 - (a + b) as i64).unsigned_abs();
            // LOA worst case error < 2^k.
            proptest::prop_assert!(err < (1u64 << k.max(1)));
        }

        #[test]
        fn truncated_error_bounded(a in 0u64..256, b in 0u64..256, k in 0usize..=8) {
            let c = truncated(8, k);
            let err = (a + b) as i64 - c.eval(a, b) as i64;
            proptest::prop_assert!(err >= 0, "truncation only under-estimates");
            proptest::prop_assert!(err < (2 << k.max(1)) as i64);
        }
    }
}

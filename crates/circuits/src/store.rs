//! Persisting circuit libraries in the binary frame store.
//!
//! A generated library is a pure function of its [`crate::LibrarySpec`],
//! but generating a large one (enumeration + mutation + behavioural
//! dedup) takes real time. This module saves a library to one sealed
//! [`afp_store`] file and streams it back lazily, so downstream tools
//! (benchmarks, the CLI `library` command, cross-process experiments)
//! can reopen a corpus in milliseconds without re-enumeration.
//!
//! Each record payload is `kind` byte + operand-width varint + the
//! varint-packed netlist ([`afp_store::encode_netlist`]), keyed by a
//! content hash of the circuit structure — writing is therefore
//! idempotent per structure, and structural duplicates collapse to one
//! record ([`WriteSummary::deduplicated`] counts them).
//!
//! # Example
//!
//! ```
//! use afp_circuits::{adders, store};
//!
//! let dir = std::env::temp_dir().join(format!("afp-store-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("lib.afps");
//! let circuits = vec![adders::ripple_carry(4), adders::loa(4, 2)];
//! store::write_library(&path, &circuits).unwrap();
//! let back: Vec<_> = store::stream_library(&path)
//!     .unwrap()
//!     .collect::<std::io::Result<_>>()
//!     .unwrap();
//! assert_eq!(back.len(), 2);
//! assert_eq!(back[0].eval(3, 4), 7);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::io;
use std::path::Path;

use afp_runtime::{Key128, StableHasher};
use afp_store::bytes::{put_uvarint, ByteReader};
use afp_store::{decode_netlist, encode_netlist, FrameStream, StoreWriter};

use crate::arith::{ArithCircuit, ArithKind};

/// Record version of the circuit payload encoding.
const CIRCUIT_VERSION: u32 = 1;

const KIND_ADDER: u8 = 0;
const KIND_MULTIPLIER: u8 = 1;

/// What [`write_library`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteSummary {
    /// Records written to the store.
    pub written: usize,
    /// Circuits skipped because a structurally identical circuit (same
    /// kind, width and netlist structure) was already written.
    pub deduplicated: usize,
    /// Bytes of the finished store file.
    pub bytes: u64,
}

/// The content key of one circuit: kind, width and netlist structure
/// (names excluded — a renamed circuit is the same record).
fn circuit_key(circuit: &ArithCircuit) -> Key128 {
    let mut h = StableHasher::new();
    h.write_str("circuit");
    h.write_str(circuit.kind().mnemonic());
    h.write_usize(circuit.width());
    h.write_u64(circuit.netlist().structural_hash());
    h.finish()
}

fn encode_circuit(circuit: &ArithCircuit, out: &mut Vec<u8>) {
    out.push(match circuit.kind() {
        ArithKind::Adder => KIND_ADDER,
        ArithKind::Multiplier => KIND_MULTIPLIER,
    });
    put_uvarint(out, circuit.width() as u64);
    encode_netlist(circuit.netlist(), out);
}

fn decode_circuit(payload: &[u8]) -> Option<ArithCircuit> {
    let mut r = ByteReader::new(payload);
    let kind = match r.u8()? {
        KIND_ADDER => ArithKind::Adder,
        KIND_MULTIPLIER => ArithKind::Multiplier,
        _ => return None,
    };
    let width = usize::try_from(r.uvarint()?).ok()?;
    let netlist = decode_netlist(&mut r)?;
    if !r.is_empty() {
        return None;
    }
    // Check the interface instead of letting `ArithCircuit::new` panic on
    // a corrupted or hand-edited record.
    if netlist.num_inputs() != 2 * width || netlist.num_outputs() != kind.out_width(width) {
        return None;
    }
    Some(ArithCircuit::new(kind, width, netlist))
}

/// Write `circuits` to a sealed store file at `path` (created or
/// truncated), deduplicating structurally identical circuits by content
/// key. The parent directory must exist.
pub fn write_library(path: &Path, circuits: &[ArithCircuit]) -> io::Result<WriteSummary> {
    let mut writer = StoreWriter::create(path, CIRCUIT_VERSION)?;
    let mut seen = std::collections::HashSet::new();
    let mut summary = WriteSummary::default();
    let mut payload = Vec::new();
    for circuit in circuits {
        let key = circuit_key(circuit);
        if !seen.insert(key) {
            summary.deduplicated += 1;
            continue;
        }
        payload.clear();
        encode_circuit(circuit, &mut payload);
        writer.append(key, payload.clone())?;
        summary.written += 1;
    }
    writer.finish_sealed()?;
    summary.bytes = std::fs::metadata(path)?.len();
    Ok(summary)
}

/// Lazy iterator over the circuits of a store file written by
/// [`write_library`]. Frames are read and decompressed on demand —
/// opening the stream does not load the library.
#[derive(Debug)]
pub struct LibraryStream {
    inner: FrameStream,
    bad_version: bool,
}

impl LibraryStream {
    /// Whether the underlying file ended in a torn (truncated or
    /// corrupted) frame; circuits yielded before that point are intact.
    pub fn truncated(&self) -> bool {
        self.inner.truncated()
    }
}

impl Iterator for LibraryStream {
    type Item = io::Result<ArithCircuit>;

    fn next(&mut self) -> Option<io::Result<ArithCircuit>> {
        if self.bad_version {
            return None;
        }
        let record = self.inner.next()?;
        Some(decode_circuit(&record.payload).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "store frame does not decode as a circuit",
            )
        }))
    }
}

/// Open a lazy circuit stream over the store file at `path`.
///
/// Fails with [`io::ErrorKind::InvalidData`] if the file is not a store
/// file; a store file with an unexpected record version yields an empty
/// stream (forward compatibility: newer payloads are skipped, not
/// misparsed).
pub fn stream_library(path: &Path) -> io::Result<LibraryStream> {
    let inner = FrameStream::open(path)?;
    let bad_version = inner.header().record_version != CIRCUIT_VERSION;
    Ok(LibraryStream { inner, bad_version })
}

/// Read a whole library eagerly; see [`stream_library`].
pub fn read_library(path: &Path) -> io::Result<Vec<ArithCircuit>> {
    stream_library(path)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{adders, build_library, multipliers, LibrarySpec};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("afp-circstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("lib.afps")
    }

    #[test]
    fn round_trips_a_generated_library() {
        let path = temp_path("roundtrip");
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 40));
        let summary = write_library(&path, &lib).unwrap();
        assert_eq!(summary.written, lib.len());
        assert_eq!(summary.deduplicated, 0, "library is already deduped");
        let back = read_library(&path).unwrap();
        assert_eq!(back.len(), lib.len());
        // Streaming preserves structure exactly (netlists compare equal up
        // to the name, which the content key deliberately ignores).
        let mut originals: Vec<_> = lib
            .iter()
            .map(|c| {
                let mut n = c.netlist().clone();
                n.set_name("");
                n
            })
            .collect();
        let mut decoded: Vec<_> = back
            .iter()
            .map(|c| {
                let mut n = c.netlist().clone();
                n.set_name("");
                n
            })
            .collect();
        let by_hash = |n: &afp_netlist::Netlist| n.structural_hash();
        originals.sort_by_key(by_hash);
        decoded.sort_by_key(by_hash);
        assert_eq!(originals, decoded);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn streaming_preserves_behaviour() {
        let path = temp_path("behaviour");
        let circuits = vec![
            adders::ripple_carry(6),
            adders::loa(6, 2),
            multipliers::wallace_multiplier(4),
        ];
        write_library(&path, &circuits).unwrap();
        for (orig, got) in circuits.iter().zip(read_library(&path).unwrap().iter()) {
            assert_eq!(orig.kind(), got.kind());
            assert_eq!(orig.width(), got.width());
            for (a, b) in [(3, 5), (0, 0), (13, 11)] {
                assert_eq!(orig.eval(a, b), got.eval(a, b));
            }
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn structural_duplicates_collapse() {
        let path = temp_path("dedup");
        let a = adders::ripple_carry(4);
        let mut renamed = a.clone();
        renamed.set_name("same-structure-other-name");
        let summary = write_library(&path, &[a, renamed]).unwrap();
        assert_eq!(summary.written, 1);
        assert_eq!(summary.deduplicated, 1);
        assert_eq!(read_library(&path).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn rejects_non_store_files_and_skips_foreign_versions() {
        let path = temp_path("reject");
        std::fs::write(&path, b"name,v1,cols\n").unwrap();
        assert!(stream_library(&path).is_err());
        // A valid store with a different record version streams empty.
        let mut w = StoreWriter::create(&path, CIRCUIT_VERSION + 1).unwrap();
        w.append(Key128 { hi: 1, lo: 2 }, vec![0xFF; 4]).unwrap();
        w.finish_sealed().unwrap();
        assert_eq!(read_library(&path).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}

//! Persisting circuit libraries in the binary frame store.
//!
//! A generated library is a pure function of its [`crate::LibrarySpec`],
//! but generating a large one (enumeration + mutation + behavioural
//! dedup) takes real time. This module saves a library to one sealed
//! [`afp_store`] file and streams it back lazily, so downstream tools
//! (benchmarks, the CLI `library` command, cross-process experiments)
//! can reopen a corpus in milliseconds without re-enumeration.
//!
//! Each record payload is `kind` byte + operand-width varint + the
//! varint-packed netlist ([`afp_store::encode_netlist`]), keyed by a
//! content hash of the circuit structure — writing is therefore
//! idempotent per structure, and structural duplicates collapse to one
//! record ([`WriteSummary::deduplicated`] counts them).
//!
//! Corpora are precious: writes are atomic (temp sibling + rename, so a
//! crash mid-write never destroys an existing file), and reads fail
//! loudly — a torn tail yields a final `Err` after the intact prefix and
//! a foreign record version is an error at open, so a damaged or
//! incompatible corpus can never masquerade as a complete smaller
//! library.
//!
//! # Example
//!
//! ```
//! use afp_circuits::{adders, store};
//!
//! let dir = std::env::temp_dir().join(format!("afp-store-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("lib.afps");
//! let circuits = vec![adders::ripple_carry(4), adders::loa(4, 2)];
//! store::write_library(&path, &circuits).unwrap();
//! let back: Vec<_> = store::stream_library(&path)
//!     .unwrap()
//!     .collect::<std::io::Result<_>>()
//!     .unwrap();
//! assert_eq!(back.len(), 2);
//! assert_eq!(back[0].eval(3, 4), 7);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::collections::HashSet;
use std::io;
use std::path::Path;

use afp_runtime::{Key128, Runtime, StableHasher};
use afp_store::bytes::{put_uvarint, ByteReader};
use afp_store::{decode_netlist, encode_netlist, FrameStream, StoreWriter};

use crate::arith::{ArithCircuit, ArithKind};
use crate::library::{build_library_with, LibrarySpec};

/// Record version of the circuit payload encoding.
const CIRCUIT_VERSION: u32 = 1;

const KIND_ADDER: u8 = 0;
const KIND_MULTIPLIER: u8 = 1;

/// What [`write_library`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteSummary {
    /// Records written to the store.
    pub written: usize,
    /// Circuits skipped because a structurally identical circuit (same
    /// kind, width and netlist structure) was already written.
    pub deduplicated: usize,
    /// Bytes of the finished store file.
    pub bytes: u64,
}

/// The content key of one circuit: kind, width and netlist structure
/// (names excluded — a renamed circuit is the same record).
fn circuit_key(circuit: &ArithCircuit) -> Key128 {
    let mut h = StableHasher::new();
    h.write_str("circuit");
    h.write_str(circuit.kind().mnemonic());
    h.write_usize(circuit.width());
    h.write_u64(circuit.netlist().structural_hash());
    h.finish()
}

fn encode_circuit(circuit: &ArithCircuit, out: &mut Vec<u8>) {
    out.push(match circuit.kind() {
        ArithKind::Adder => KIND_ADDER,
        ArithKind::Multiplier => KIND_MULTIPLIER,
    });
    put_uvarint(out, circuit.width() as u64);
    encode_netlist(circuit.netlist(), out);
}

fn decode_circuit(payload: &[u8]) -> Option<ArithCircuit> {
    let mut r = ByteReader::new(payload);
    let kind = match r.u8()? {
        KIND_ADDER => ArithKind::Adder,
        KIND_MULTIPLIER => ArithKind::Multiplier,
        _ => return None,
    };
    let width = usize::try_from(r.uvarint()?).ok()?;
    let netlist = decode_netlist(&mut r)?;
    if !r.is_empty() {
        return None;
    }
    // Check the interface instead of letting `ArithCircuit::new` panic on
    // a corrupted or hand-edited record.
    if netlist.num_inputs() != 2 * width || netlist.num_outputs() != kind.out_width(width) {
        return None;
    }
    Some(ArithCircuit::new(kind, width, netlist))
}

fn append_circuits(
    writer: &mut StoreWriter,
    circuits: &[ArithCircuit],
    seen: &mut HashSet<Key128>,
    summary: &mut WriteSummary,
    payload: &mut Vec<u8>,
) -> io::Result<()> {
    for circuit in circuits {
        let key = circuit_key(circuit);
        if !seen.insert(key) {
            summary.deduplicated += 1;
            continue;
        }
        payload.clear();
        encode_circuit(circuit, payload);
        writer.append(key, payload)?;
        summary.written += 1;
    }
    Ok(())
}

/// Write `circuits` to a sealed store file at `path`, deduplicating
/// structurally identical circuits by content key. The parent directory
/// must exist. The write is atomic: frames go to a `.tmp` sibling that
/// replaces `path` only when sealing succeeds, so a crash mid-write never
/// destroys an existing corpus.
pub fn write_library(path: &Path, circuits: &[ArithCircuit]) -> io::Result<WriteSummary> {
    let mut writer = StoreWriter::create_atomic(path, CIRCUIT_VERSION)?;
    let mut seen = HashSet::new();
    let mut summary = WriteSummary::default();
    let mut payload = Vec::new();
    append_circuits(&mut writer, circuits, &mut seen, &mut summary, &mut payload)?;
    writer.finish_sealed()?;
    summary.bytes = std::fs::metadata(path)?.len();
    Ok(summary)
}

/// Generate each spec in turn and write the union to one sealed store
/// file at `path`, deduplicating structurally identical circuits across
/// the whole union. Only one generated sub-library is resident at a time,
/// so corpora larger than RAM-comfortable can still be persisted; the
/// write is atomic like [`write_library`].
pub fn write_library_specs(
    path: &Path,
    specs: &[LibrarySpec],
    rt: &Runtime,
) -> io::Result<WriteSummary> {
    let mut writer = StoreWriter::create_atomic(path, CIRCUIT_VERSION)?;
    let mut seen = HashSet::new();
    let mut summary = WriteSummary::default();
    let mut payload = Vec::new();
    for spec in specs {
        let sub = build_library_with(spec, rt);
        append_circuits(&mut writer, &sub, &mut seen, &mut summary, &mut payload)?;
    }
    writer.finish_sealed()?;
    summary.bytes = std::fs::metadata(path)?.len();
    Ok(summary)
}

/// Lazy iterator over the circuits of a store file written by
/// [`write_library`]. Frames are read and decompressed on demand —
/// opening the stream does not load the library.
///
/// A torn or corrupt tail is never silent: after yielding the intact
/// prefix, the stream yields one final `Err` so a damaged corpus cannot
/// masquerade as a complete smaller library. Callers that *want* the
/// recovered prefix can consume circuits until the error and check
/// [`LibraryStream::truncated`].
#[derive(Debug)]
pub struct LibraryStream {
    inner: FrameStream,
    torn_reported: bool,
}

impl LibraryStream {
    /// Whether the underlying file ended in a torn (truncated or
    /// corrupted) frame; circuits yielded before that point are intact.
    pub fn truncated(&self) -> bool {
        self.inner.truncated()
    }
}

impl Iterator for LibraryStream {
    type Item = io::Result<ArithCircuit>;

    fn next(&mut self) -> Option<io::Result<ArithCircuit>> {
        match self.inner.next() {
            Some(record) => Some(decode_circuit(&record.payload).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "store frame does not decode as a circuit",
                )
            })),
            None if self.inner.truncated() && !self.torn_reported => {
                self.torn_reported = true;
                Some(Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "circuit store ends in a torn or corrupt frame \
                     (corpus is truncated; circuits already yielded are intact)",
                )))
            }
            None => None,
        }
    }
}

/// Open a lazy circuit stream over the store file at `path`.
///
/// Fails with [`io::ErrorKind::InvalidData`] if the file is not a store
/// file, or if it is a store file whose record version differs from the
/// circuit encoding this build understands — a foreign-version corpus is
/// an error naming both versions, never a silent empty stream.
pub fn stream_library(path: &Path) -> io::Result<LibraryStream> {
    let inner = FrameStream::open(path)?;
    let found = inner.header().record_version;
    if found != CIRCUIT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "circuit store has record version {found}, this build reads \
                 version {CIRCUIT_VERSION} ({})",
                path.display()
            ),
        ));
    }
    Ok(LibraryStream {
        inner,
        torn_reported: false,
    })
}

/// Read a whole library eagerly; see [`stream_library`]. Fails — like the
/// stream — on torn tails and foreign record versions.
pub fn read_library(path: &Path) -> io::Result<Vec<ArithCircuit>> {
    stream_library(path)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{adders, build_library, multipliers, LibrarySpec};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("afp-circstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("lib.afps")
    }

    #[test]
    fn round_trips_a_generated_library() {
        let path = temp_path("roundtrip");
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 40));
        let summary = write_library(&path, &lib).unwrap();
        assert_eq!(summary.written, lib.len());
        assert_eq!(summary.deduplicated, 0, "library is already deduped");
        let back = read_library(&path).unwrap();
        assert_eq!(back.len(), lib.len());
        // Streaming preserves structure exactly (netlists compare equal up
        // to the name, which the content key deliberately ignores).
        let mut originals: Vec<_> = lib
            .iter()
            .map(|c| {
                let mut n = c.netlist().clone();
                n.set_name("");
                n
            })
            .collect();
        let mut decoded: Vec<_> = back
            .iter()
            .map(|c| {
                let mut n = c.netlist().clone();
                n.set_name("");
                n
            })
            .collect();
        let by_hash = |n: &afp_netlist::Netlist| n.structural_hash();
        originals.sort_by_key(by_hash);
        decoded.sort_by_key(by_hash);
        assert_eq!(originals, decoded);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn streaming_preserves_behaviour() {
        let path = temp_path("behaviour");
        let circuits = vec![
            adders::ripple_carry(6),
            adders::loa(6, 2),
            multipliers::wallace_multiplier(4),
        ];
        write_library(&path, &circuits).unwrap();
        for (orig, got) in circuits.iter().zip(read_library(&path).unwrap().iter()) {
            assert_eq!(orig.kind(), got.kind());
            assert_eq!(orig.width(), got.width());
            for (a, b) in [(3, 5), (0, 0), (13, 11)] {
                assert_eq!(orig.eval(a, b), got.eval(a, b));
            }
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn structural_duplicates_collapse() {
        let path = temp_path("dedup");
        let a = adders::ripple_carry(4);
        let mut renamed = a.clone();
        renamed.set_name("same-structure-other-name");
        let summary = write_library(&path, &[a, renamed]).unwrap();
        assert_eq!(summary.written, 1);
        assert_eq!(summary.deduplicated, 1);
        assert_eq!(read_library(&path).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn rejects_non_store_files_and_foreign_versions() {
        let path = temp_path("reject");
        std::fs::write(&path, b"name,v1,cols\n").unwrap();
        assert!(stream_library(&path).is_err());
        // A valid store with a different record version must fail loudly
        // at open — indistinguishable-from-empty was a silent-loss bug.
        let mut w = StoreWriter::create(&path, CIRCUIT_VERSION + 1).unwrap();
        w.append(Key128 { hi: 1, lo: 2 }, &[0xFF; 4]).unwrap();
        w.finish_sealed().unwrap();
        let err = stream_library(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("record version 2") && msg.contains("version 1"),
            "error must name both versions: {msg}"
        );
        assert!(read_library(&path).is_err());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_corpus_yields_prefix_then_error() {
        let path = temp_path("torn");
        let circuits = vec![
            adders::ripple_carry(4),
            adders::loa(4, 1),
            adders::loa(4, 2),
        ];
        write_library(&path, &circuits).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Chop through the trailer into the index frame: every data frame
        // is intact, so all circuits stream back, but the tear itself must
        // still surface as a final error instead of silently vanishing.
        std::fs::write(&path, &full[..full.len() - 12]).unwrap();
        let mut stream = stream_library(&path).unwrap();
        let mut ok = 0usize;
        let mut errs = 0usize;
        for item in stream.by_ref() {
            match item {
                Ok(_) => ok += 1,
                Err(e) => {
                    errs += 1;
                    assert_eq!(e.kind(), io::ErrorKind::InvalidData);
                }
            }
        }
        assert_eq!((ok, errs), (circuits.len(), 1));
        assert!(stream.truncated());
        // The eager reader propagates the same error.
        assert!(read_library(&path).is_err());

        // Chop into the data frame itself: fewer (here zero — one block
        // frame holds all three) circuits, same loud error.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(read_library(&path).is_err());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn write_specs_streams_one_sub_library_at_a_time() {
        let path = temp_path("specs");
        let specs = [
            LibrarySpec::new(ArithKind::Adder, 4, 10),
            LibrarySpec::new(ArithKind::Adder, 4, 10), // exact duplicate spec
            LibrarySpec::new(ArithKind::Multiplier, 4, 6),
        ];
        let rt = Runtime::new(1);
        let summary = write_library_specs(&path, &specs, &rt).unwrap();
        // The duplicate spec regenerates the same structures, so the
        // union dedups it away entirely.
        let adders = build_library(&LibrarySpec::new(ArithKind::Adder, 4, 10));
        let muls = build_library(&LibrarySpec::new(ArithKind::Multiplier, 4, 6));
        assert_eq!(summary.written, adders.len() + muls.len());
        assert_eq!(summary.deduplicated, adders.len());
        let back = read_library(&path).unwrap();
        assert_eq!(back.len(), summary.written);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}

//! Library sources: where a flow's circuits come from.
//!
//! [`LibrarySource`] abstracts over the two ways a characterization run
//! obtains its library — generated in process from a [`LibrarySpec`], or
//! streamed shard-at-a-time from a sealed `.afps` corpus written by
//! [`crate::store::write_library`] — behind one
//! [`LibrarySource::shards`] / [`LibrarySource::for_each_shard`] API.
//! Streaming a stored corpus keeps at most one shard of circuits
//! resident, which is what makes paper-full-scale libraries (the 44,940
//! 8x8 multipliers plus the five smaller libraries) a bounded-memory
//! default instead of a RAM lottery.
//!
//! Shard boundaries never change *what* is iterated: concatenating the
//! shards of any source, for any shard size, yields the same circuits in
//! the same order.

use std::io;
use std::path::{Path, PathBuf};

use afp_runtime::Runtime;

use crate::arith::{ArithCircuit, ArithKind};
use crate::library::{build_library_with, LibrarySpec};
use crate::store::{stream_library, write_library_specs, LibraryStream, WriteSummary};

/// Where a characterization run gets its circuits.
#[derive(Clone, Debug, PartialEq)]
pub enum LibrarySource {
    /// Generate the library in process from a spec (the classic path).
    Generated(LibrarySpec),
    /// Stream a persisted corpus from a sealed `.afps` store file.
    Stored(PathBuf),
}

impl LibrarySource {
    /// Iterate the source's circuits in shards of at most `shard`
    /// circuits (a `shard` of `0` means one unbounded shard).
    ///
    /// For [`LibrarySource::Stored`] this opens the corpus lazily — a
    /// missing file, non-store file, or foreign record version fails
    /// here, and a torn tail surfaces as an `Err` shard mid-iteration.
    /// For [`LibrarySource::Generated`] the library is built first (that
    /// path is inherently resident) and then chunked, so both variants
    /// look identical to the consumer.
    pub fn shards(&self, shard: usize, rt: &Runtime) -> io::Result<LibraryShards> {
        let shard = if shard == 0 { usize::MAX } else { shard };
        let inner = match self {
            LibrarySource::Generated(spec) => {
                ShardsInner::Generated(build_library_with(spec, rt).into_iter())
            }
            LibrarySource::Stored(path) => ShardsInner::Stored(stream_library(path)?),
        };
        Ok(LibraryShards { shard, inner })
    }

    /// Drive `f` over every shard in order; returns the total number of
    /// circuits visited. Stops at the first error (the source's own, or
    /// one returned by `f`).
    pub fn for_each_shard(
        &self,
        shard: usize,
        rt: &Runtime,
        mut f: impl FnMut(Vec<ArithCircuit>) -> io::Result<()>,
    ) -> io::Result<usize> {
        let mut total = 0;
        for batch in self.shards(shard, rt)? {
            let batch = batch?;
            total += batch.len();
            f(batch)?;
        }
        Ok(total)
    }
}

/// Iterator over the shards of a [`LibrarySource`]; see
/// [`LibrarySource::shards`].
#[derive(Debug)]
pub struct LibraryShards {
    shard: usize,
    inner: ShardsInner,
}

#[derive(Debug)]
enum ShardsInner {
    Generated(std::vec::IntoIter<ArithCircuit>),
    Stored(LibraryStream),
    /// An error was yielded; the iteration is over.
    Done,
}

impl Iterator for LibraryShards {
    type Item = io::Result<Vec<ArithCircuit>>;

    fn next(&mut self) -> Option<io::Result<Vec<ArithCircuit>>> {
        let mut batch = Vec::new();
        match &mut self.inner {
            ShardsInner::Generated(circuits) => {
                batch.extend(circuits.by_ref().take(self.shard));
            }
            ShardsInner::Stored(stream) => {
                while batch.len() < self.shard {
                    match stream.next() {
                        Some(Ok(circuit)) => batch.push(circuit),
                        Some(Err(e)) => {
                            // Decode failure or torn tail: report it and
                            // end the iteration (the intact prefix in
                            // `batch` is dropped — a failed stream must
                            // not half-succeed).
                            self.inner = ShardsInner::Done;
                            return Some(Err(e));
                        }
                        None => break,
                    }
                }
            }
            ShardsInner::Done => return None,
        }
        if batch.is_empty() {
            None
        } else {
            Some(Ok(batch))
        }
    }
}

/// The six libraries of the paper's full-scale corpus (DESIGN.md
/// "Library sizing"; the 8x8 multiplier library is the full 44,940 the
/// paper subsamples to 4,494), each `target_size` down-scaled by `scale`
/// in `(0, 1]`. Out-of-range or non-finite scales are treated as `1.0`;
/// every library keeps at least a handful of circuits so heavily
/// down-scaled smoke runs still exercise all six kind/width corners.
pub fn paper_full_specs(scale: f64) -> Vec<LibrarySpec> {
    let scale = if scale.is_finite() && scale > 0.0 && scale <= 1.0 {
        scale
    } else {
        1.0
    };
    let scaled = |n: usize| (((n as f64) * scale).round() as usize).max(4);
    [
        (ArithKind::Adder, 8, 500),
        (ArithKind::Adder, 12, 1000),
        (ArithKind::Adder, 16, 1200),
        (ArithKind::Multiplier, 8, 44_940),
        (ArithKind::Multiplier, 12, 1200),
        (ArithKind::Multiplier, 16, 1500),
    ]
    .iter()
    .map(|&(kind, width, n)| LibrarySpec::new(kind, width, scaled(n)))
    .collect()
}

/// Generate and persist the corpus described by `specs` at `path`,
/// unless a store file that opens cleanly (right magic, container and
/// record version) is already there. Returns the write summary when a
/// corpus was written, `None` when the existing file was reused.
pub fn ensure_library(
    path: &Path,
    specs: &[LibrarySpec],
    rt: &Runtime,
) -> io::Result<Option<WriteSummary>> {
    if path.exists() {
        // Opening validates the header; a torn tail is caught later, by
        // the streaming consumer, where it fails loudly.
        stream_library(path)?;
        return Ok(None);
    }
    write_library_specs(path, specs, rt).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::write_library;
    use crate::{build_library, read_library};

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("afp-source-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("lib.afps")
    }

    fn names(circuits: &[ArithCircuit]) -> Vec<String> {
        circuits.iter().map(|c| c.name().to_string()).collect()
    }

    #[test]
    fn generated_shards_concatenate_to_the_full_library() {
        let spec = LibrarySpec::new(ArithKind::Adder, 6, 25);
        let full = build_library(&spec);
        let rt = Runtime::new(1);
        for shard in [1, 7, 25, 1000, 0] {
            let source = LibrarySource::Generated(spec.clone());
            let mut got = Vec::new();
            let mut sizes = Vec::new();
            let total = source
                .for_each_shard(shard, &rt, |batch| {
                    sizes.push(batch.len());
                    got.extend(batch);
                    Ok(())
                })
                .unwrap();
            assert_eq!(total, full.len(), "shard={shard}");
            assert_eq!(names(&got), names(&full), "shard={shard}");
            let cap = if shard == 0 { usize::MAX } else { shard };
            assert!(sizes.iter().all(|&s| s <= cap), "shard={shard}");
        }
    }

    #[test]
    fn stored_shards_match_the_eager_reader() {
        let path = temp_path("stored");
        let lib = build_library(&LibrarySpec::new(ArithKind::Multiplier, 4, 12));
        write_library(&path, &lib).unwrap();
        let eager = read_library(&path).unwrap();
        let rt = Runtime::new(1);
        for shard in [1, 5, 64] {
            let source = LibrarySource::Stored(path.clone());
            let mut got = Vec::new();
            source
                .for_each_shard(shard, &rt, |batch| {
                    got.extend(batch);
                    Ok(())
                })
                .unwrap();
            assert_eq!(names(&got), names(&eager), "shard={shard}");
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn stored_source_propagates_open_and_tail_errors() {
        let path = temp_path("errors");
        let rt = Runtime::new(1);
        // Missing file: error at open.
        assert!(LibrarySource::Stored(path.clone()).shards(8, &rt).is_err());
        // Torn tail: error mid-iteration.
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 4, 10));
        write_library(&path, &lib).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = LibrarySource::Stored(path.clone())
            .for_each_shard(4, &rt, |_| Ok(()))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn paper_specs_scale_down_but_cover_all_corners() {
        let full = paper_full_specs(1.0);
        assert_eq!(full.len(), 6);
        assert_eq!(full[3].target_size, 44_940);
        let tiny = paper_full_specs(0.001);
        assert_eq!(tiny.len(), 6);
        assert!(tiny.iter().all(|s| s.target_size >= 4));
        assert_eq!(tiny[3].target_size, 45);
        // Nonsense scales fall back to full size.
        assert_eq!(paper_full_specs(f64::NAN), full);
        assert_eq!(paper_full_specs(-3.0), full);
    }

    #[test]
    fn ensure_library_writes_once_and_reuses() {
        let path = temp_path("ensure");
        let rt = Runtime::new(1);
        let specs = [LibrarySpec::new(ArithKind::Adder, 4, 8)];
        let first = ensure_library(&path, &specs, &rt).unwrap();
        assert!(first.is_some());
        let again = ensure_library(&path, &specs, &rt).unwrap();
        assert!(again.is_none(), "existing corpus must be reused");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}

//! Compact textual spec refs naming one generator-built circuit.
//!
//! A spec ref is the request vocabulary of the characterization service:
//! `{kind}{width}:{family}[:{param}[:{param}]]`, e.g. `mul8:trunc:3` (an
//! 8-bit multiplier with the 3 lowest product columns truncated) or
//! `add8:loa:2` (a lower-part-OR adder with a 2-bit approximate part).
//! Every parameter is validated *before* the generator runs, so a
//! malformed or out-of-range ref returns an error instead of panicking —
//! mandatory for anything reachable from a network request.
//!
//! Families:
//!
//! | kind  | family                                  | params |
//! |-------|-----------------------------------------|--------|
//! | `add` | `rca` `cla` `csel` `cskip`              | —      |
//! | `add` | `loa` `trunc` `nocarry`                 | `k`    |
//! | `add` | `afa-sic` `afa-ign` `afa-cib`           | `k`    |
//! | `add` | `gear`                                  | `r:p`  |
//! | `mul` | `array` `wallace`                       | —      |
//! | `mul` | `trunc` `compressor`                    | `k`    |
//! | `mul` | `broken`                                | `vbl:hbl` |
//! | `mul` | `udm`                                   | hex mask |

use crate::arith::{ArithCircuit, ArithKind};
use crate::{adders, multipliers};

/// Parse one spec ref (see the module docs) into a circuit.
///
/// Errors (never panics) on unknown kinds/families, missing or trailing
/// parameters, and parameters outside the generator's documented domain.
pub fn from_spec_ref(spec: &str) -> Result<ArithCircuit, String> {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or("");
    let (kind, width) = parse_head(head)?;
    let family = parts
        .next()
        .ok_or_else(|| format!("spec `{spec}` is missing a family (e.g. `mul8:trunc:3`)"))?;
    let params: Vec<&str> = parts.collect();

    let circuit = match kind {
        ArithKind::Adder => adder(spec, width, family, &params)?,
        ArithKind::Multiplier => multiplier(spec, width, family, &params)?,
    };
    Ok(circuit)
}

/// Split `mul8` / `add16` into kind and width.
fn parse_head(head: &str) -> Result<(ArithKind, usize), String> {
    for kind in [ArithKind::Adder, ArithKind::Multiplier] {
        if let Some(digits) = head.strip_prefix(kind.mnemonic()) {
            let width: usize = digits
                .parse()
                .map_err(|_| format!("bad width in spec head `{head}`"))?;
            let max = match kind {
                ArithKind::Adder => 32,
                ArithKind::Multiplier => 16,
            };
            if width < 1 || width > max {
                return Err(format!(
                    "width {width} out of range for {}: must be 1..={max}",
                    kind.mnemonic()
                ));
            }
            return Ok((kind, width));
        }
    }
    Err(format!(
        "spec head `{head}` must be `add<width>` or `mul<width>`"
    ))
}

/// Expect exactly `n` parameters, each a decimal `usize`.
fn usize_params(spec: &str, params: &[&str], n: usize) -> Result<Vec<usize>, String> {
    if params.len() != n {
        return Err(format!(
            "spec `{spec}` takes {n} parameter(s), got {}",
            params.len()
        ));
    }
    params
        .iter()
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| format!("bad parameter `{p}` in spec `{spec}`"))
        })
        .collect()
}

fn adder(spec: &str, width: usize, family: &str, params: &[&str]) -> Result<ArithCircuit, String> {
    let exact = |build: fn(usize) -> ArithCircuit| {
        usize_params(spec, params, 0)?;
        Ok(build(width))
    };
    // `k`-parameterized families share the constraint `k <= width`.
    let approx_low = |build: fn(usize, usize) -> ArithCircuit| {
        let k = usize_params(spec, params, 1)?[0];
        if k > width {
            return Err(format!(
                "spec `{spec}`: approximate part {k} exceeds width {width}"
            ));
        }
        Ok(build(width, k))
    };
    match family {
        "rca" => exact(adders::ripple_carry),
        "cla" => exact(adders::carry_lookahead),
        "csel" => exact(adders::carry_select),
        "cskip" => exact(adders::carry_skip),
        "loa" => approx_low(adders::loa),
        "trunc" => approx_low(adders::truncated),
        "nocarry" => approx_low(adders::no_carry),
        "afa-sic" => approx_low(|w, k| adders::afa_substituted(w, k, adders::ApproxFa::SumIsCin)),
        "afa-ign" => approx_low(|w, k| adders::afa_substituted(w, k, adders::ApproxFa::IgnoreCin)),
        "afa-cib" => approx_low(|w, k| adders::afa_substituted(w, k, adders::ApproxFa::CarryIsB)),
        "gear" => {
            let p2 = usize_params(spec, params, 2)?;
            let (r, p) = (p2[0], p2[1]);
            if r < 1 || r + p > width {
                return Err(format!(
                    "spec `{spec}`: GeAr needs r >= 1 and r + p <= width ({width})"
                ));
            }
            Ok(adders::gear(width, r, p))
        }
        other => Err(format!("unknown adder family `{other}` in spec `{spec}`")),
    }
}

fn multiplier(
    spec: &str,
    width: usize,
    family: &str,
    params: &[&str],
) -> Result<ArithCircuit, String> {
    match family {
        "array" => {
            usize_params(spec, params, 0)?;
            Ok(multipliers::array_multiplier(width))
        }
        "wallace" => {
            usize_params(spec, params, 0)?;
            Ok(multipliers::wallace_multiplier(width))
        }
        "trunc" | "compressor" => {
            let k = usize_params(spec, params, 1)?[0];
            if k >= 2 * width {
                return Err(format!(
                    "spec `{spec}`: cannot drop {k} of {} product columns",
                    2 * width
                ));
            }
            Ok(match family {
                "trunc" => multipliers::truncated(width, k),
                _ => multipliers::approx_compressor(width, k),
            })
        }
        "broken" => {
            let p2 = usize_params(spec, params, 2)?;
            let (vbl, hbl) = (p2[0], p2[1]);
            if vbl >= 2 * width || hbl > width {
                return Err(format!(
                    "spec `{spec}`: break lines out of range (vbl < {}, hbl <= {width})",
                    2 * width
                ));
            }
            Ok(multipliers::broken_array(width, vbl, hbl))
        }
        "udm" => {
            if !width.is_multiple_of(2) {
                return Err(format!(
                    "spec `{spec}`: underdesigned multipliers need an even width"
                ));
            }
            let [mask] = params else {
                return Err(format!("spec `{spec}` takes 1 hex-mask parameter"));
            };
            let mask = u64::from_str_radix(mask, 16)
                .map_err(|_| format!("bad hex mask `{mask}` in spec `{spec}`"))?;
            Ok(multipliers::underdesigned(width, mask))
        }
        other => Err(format!(
            "unknown multiplier family `{other}` in spec `{spec}`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_build_the_expected_circuits() {
        let cases = [
            ("add8:rca", "add8u_rca", 8),
            ("add8:cla", "add8u_cla", 8),
            ("add8:loa:2", "add8u_loa2", 8),
            ("add8:gear:2:2", "add8u_gear_r2p2", 8),
            ("mul8:array", "mul8u_arr", 8),
            ("mul8:trunc:3", "mul8u_trunc3", 8),
            ("mul8:broken:4:2", "mul8u_bam_v4h2", 8),
            ("mul8:udm:5", "mul8u_udm5", 8),
        ];
        for (spec, name, width) in cases {
            let c = from_spec_ref(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(c.name(), name, "{spec}");
            assert_eq!(c.width(), width, "{spec}");
        }
    }

    #[test]
    fn spec_output_matches_direct_generator_call() {
        let via_spec = from_spec_ref("mul8:trunc:3").unwrap();
        let direct = multipliers::truncated(8, 3);
        assert_eq!(via_spec.name(), direct.name());
        assert_eq!(
            via_spec.netlist().structural_hash(),
            direct.netlist().structural_hash()
        );
    }

    #[test]
    fn malformed_specs_error_instead_of_panicking() {
        for bad in [
            "",
            "mul8",
            "div8:x",
            "mulx:array",
            "mul99:array",
            "add0:rca",
            "add8:rca:1",
            "add8:loa",
            "add8:loa:9",
            "add8:loa:x",
            "add8:gear:0:1",
            "add8:gear:5:5",
            "add8:bogus",
            "mul8:trunc:16",
            "mul8:broken:16:2",
            "mul8:broken:1:9",
            "mul7:udm:3",
            "mul8:udm:zz",
            "mul8:bogus:1",
        ] {
            assert!(from_spec_ref(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn exactness_survives_the_parser() {
        let c = from_spec_ref("add8:rca").unwrap();
        assert_eq!(c.eval(13, 29), 42);
    }
}

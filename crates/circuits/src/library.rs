//! Whole-library enumeration: the reproduction's stand-in for EvoApprox8b.
//!
//! [`build_library`] enumerates a deterministic, deduplicated collection of
//! approximate circuits of one kind and width, mixing:
//!
//! 1. the exact baseline architectures,
//! 2. the full parameter grids of the structured approximations
//!    (truncation, LOA, GeAr, broken-array, ...),
//! 3. seeded random mutants of all of the above, at increasing mutation
//!    counts, until the requested library size is reached.
//!
//! Circuits that are behavioural duplicates (same function) or garbage
//! (mean relative error above [`LibrarySpec::max_mean_rel_error`]) are
//! dropped, mirroring how a curated AC library ships only usable points.

use afp_runtime::Runtime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::adders;
use crate::advanced_multipliers;
use crate::arith::{behavioral_signature, ArithCircuit, ArithKind, BatchEvaluator};
use crate::multipliers;
use crate::mutate::{mutate, MutationConfig};
use crate::prefix_adders;

/// Specification of a circuit library to enumerate.
#[derive(Clone, Debug, PartialEq)]
pub struct LibrarySpec {
    /// Adder or multiplier.
    pub kind: ArithKind,
    /// Operand width in bits.
    pub width: usize,
    /// Target number of circuits (best effort: the builder stops early only
    /// if its generation budget is exhausted).
    pub target_size: usize,
    /// Master seed; equal specs produce identical libraries.
    pub seed: u64,
    /// Garbage filter: drop circuits whose mean relative error on the probe
    /// sample exceeds this (1.0 disables the filter).
    pub max_mean_rel_error: f64,
}

impl LibrarySpec {
    /// Library of `target_size` approximate circuits of `kind`/`width` with
    /// the default seed and garbage filter.
    pub fn new(kind: ArithKind, width: usize, target_size: usize) -> LibrarySpec {
        LibrarySpec {
            kind,
            width,
            target_size,
            seed: 0xEF0_2020,
            max_mean_rel_error: 0.40,
        }
    }
}

/// Enumerate the library described by `spec`.
///
/// The result is deterministic, free of behavioural duplicates, and always
/// contains the exact baseline architectures (so the pareto fronts have an
/// error-zero anchor, as the real EvoApprox library does).
///
/// # Example
///
/// ```
/// use afp_circuits::{build_library, ArithKind, LibrarySpec};
///
/// let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 40));
/// assert!(lib.len() >= 30);
/// assert!(lib.iter().any(|c| c.name().contains("rca")));
/// ```
pub fn build_library(spec: &LibrarySpec) -> Vec<ArithCircuit> {
    build_library_with(spec, &Runtime::serial())
}

/// A candidate prepared off the accept path: the (simplified) circuit plus
/// its garbage-filter verdict and behavioural signature, both of which are
/// pure functions of the circuit and therefore safe to compute in parallel.
type Prepared = (ArithCircuit, bool, u64);

/// [`build_library`] on an explicit [`Runtime`].
///
/// Candidate generation, simplification, the garbage filter and signature
/// computation run in parallel; acceptance stays sequential in candidate
/// order, so the result is identical to the serial build for any thread
/// count.
pub fn build_library_with(spec: &LibrarySpec, rt: &Runtime) -> Vec<ArithCircuit> {
    let mut lib: Vec<ArithCircuit> = Vec::with_capacity(spec.target_size);
    let mut seen: HashSet<u64> = HashSet::new();
    let accept = |(c, ok, sig): Prepared, lib: &mut Vec<ArithCircuit>, seen: &mut HashSet<u64>| {
        if lib.len() >= spec.target_size || !ok {
            return false;
        }
        if seen.insert(sig) {
            lib.push(c);
            true
        } else {
            false
        }
    };
    let prepare = |mut c: ArithCircuit, simplify: bool| -> Prepared {
        if simplify {
            c.simplify();
        }
        let ok = acceptable(&c, spec.max_mean_rel_error);
        let sig = behavioral_signature(&c);
        (c, ok, sig)
    };

    // 1. Exact baselines.
    let seeds = exact_seeds(spec.kind, spec.width);
    for p in rt.par_map(&seeds, |_, c| prepare(c.clone(), false)) {
        accept(p, &mut lib, &mut seen);
    }

    // 2. Structured approximation grids.
    let grid = structured_grid(spec.kind, spec.width);
    for p in rt.par_map(&grid, |_, c| prepare(c.clone(), true)) {
        accept(p, &mut lib, &mut seen);
    }

    // 3. Seeded mutants until the target is reached. Bases cycle over the
    //    library collected so far (structured approximations included) so
    //    mutants inherit diverse starting points. The rng stream is
    //    consumed once per attempt regardless of acceptance, so all draws
    //    can be made up front and the mutants evaluated in parallel waves;
    //    only the in-order accept loop decides what enters the library.
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let bases: Vec<ArithCircuit> = lib.clone();
    let budget = spec.target_size * 8; // generation attempts
    let draws: Vec<(usize, MutationConfig)> = (0..budget as u64)
        .map(|attempt| {
            let base = rng.gen_range(0..bases.len());
            let cfg = MutationConfig {
                mutations: 1 + (attempt % 6) as usize,
                lsb_bias: 0.45 + 0.1 * ((attempt % 5) as f64),
                seed: spec.seed ^ attempt,
            };
            (base, cfg)
        })
        .collect();
    // Waves are a fixed size (never a function of the thread count) so the
    // wasted tail when the library fills mid-wave is bounded and the
    // accept order is reproducible.
    const WAVE: usize = 64;
    'waves: for wave in draws.chunks(WAVE) {
        if lib.len() >= spec.target_size {
            break;
        }
        let prepared = rt.par_map(wave, |_, (base, cfg)| {
            prepare(mutate(&bases[*base], cfg), false)
        });
        for p in prepared {
            accept(p, &mut lib, &mut seen);
            if lib.len() >= spec.target_size {
                break 'waves;
            }
        }
    }

    // Stable, human-readable names: kind+width, then ordinal.
    for (i, c) in lib.iter_mut().enumerate() {
        let base = c.name().to_string();
        c.set_name(format!(
            "{}{}u_{:05}_{}",
            spec.kind.mnemonic(),
            spec.width,
            i,
            base.split("u_").nth(1).unwrap_or(&base)
        ));
    }
    lib
}

/// The exact architectures included in every library.
pub fn exact_seeds(kind: ArithKind, width: usize) -> Vec<ArithCircuit> {
    match kind {
        ArithKind::Adder => vec![
            adders::ripple_carry(width),
            adders::carry_lookahead(width),
            adders::carry_select(width),
            adders::carry_skip(width),
            prefix_adders::kogge_stone(width),
            prefix_adders::brent_kung(width),
        ],
        ArithKind::Multiplier => {
            let mut seeds = vec![
                multipliers::array_multiplier(width),
                multipliers::wallace_multiplier(width),
                advanced_multipliers::dadda_multiplier(width),
            ];
            if width.is_multiple_of(2) {
                seeds.push(advanced_multipliers::radix4_multiplier(width));
            }
            seeds
        }
    }
}

/// The structured (non-mutated) approximation grid for one kind/width.
pub fn structured_grid(kind: ArithKind, width: usize) -> Vec<ArithCircuit> {
    let mut out = Vec::new();
    match kind {
        ArithKind::Adder => {
            for k in 1..width {
                out.push(adders::loa(width, k));
                out.push(adders::truncated(width, k));
                out.push(adders::no_carry(width, k));
                for v in adders::ApproxFa::ALL {
                    out.push(adders::afa_substituted(width, k, v));
                }
            }
            for r in 1..width.min(6) {
                for p in 0..=width.min(4) {
                    if r + p >= 2 && r + p < width {
                        out.push(adders::gear(width, r, p));
                    }
                }
            }
            for block in 2..=(width / 2).max(2) {
                out.push(prefix_adders::etaii(width, block));
            }
            for k in 1..width {
                out.push(prefix_adders::truncated_compensated(width, k));
            }
        }
        ArithKind::Multiplier => {
            for k in 1..(2 * width - 2) {
                out.push(multipliers::truncated(width, k));
                out.push(multipliers::approx_compressor(width, k));
            }
            for vbl in 0..width {
                for hbl in 0..=(width / 2) {
                    if vbl + hbl > 0 {
                        out.push(multipliers::broken_array(width, vbl, hbl));
                    }
                }
            }
            for k in 2..width {
                out.push(advanced_multipliers::drum(width, k));
            }
            if width.is_multiple_of(2) {
                let blocks = (width / 2) * (width / 2);
                // LSB-first prefixes of approximate blocks plus a few
                // scattered masks.
                for nb in 1..=blocks.min(63) {
                    out.push(multipliers::underdesigned(width, (1u64 << nb) - 1));
                }
                let mut s = 0x5EED_u64 ^ width as u64;
                for _ in 0..8 {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let mask = s & ((1u64 << blocks.min(63)) - 1);
                    if mask != 0 {
                        out.push(multipliers::underdesigned(width, mask));
                    }
                }
            }
        }
    }
    out
}

/// Garbage filter: mean relative error over a deterministic 192-pair probe.
fn acceptable(c: &ArithCircuit, max_mean_rel_error: f64) -> bool {
    if max_mean_rel_error >= 1.0 {
        return true;
    }
    let w = c.width();
    let mask = (1u64 << w) - 1;
    let mut pairs = vec![(mask, mask), (mask >> 1, mask >> 1)];
    let mut s = 0xFACE_u64;
    for _ in 0..190 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        pairs.push(((s >> 5) & mask, (s >> 37) & mask));
    }
    let mut batch = BatchEvaluator::new(c);
    let got = batch.eval_pairs(&pairs);
    let max_out = c.kind().max_output(w) as f64;
    let mean_rel: f64 = pairs
        .iter()
        .zip(&got)
        .map(|(&(a, b), &g)| (g as f64 - c.exact(a, b) as f64).abs() / max_out)
        .sum::<f64>()
        / pairs.len() as f64;
    mean_rel <= max_mean_rel_error
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_reaches_target_and_dedups() {
        let lib = build_library(&LibrarySpec::new(ArithKind::Multiplier, 8, 60));
        assert!(lib.len() >= 50, "only {} circuits", lib.len());
        let sigs: HashSet<u64> = lib.iter().map(behavioral_signature).collect();
        assert_eq!(sigs.len(), lib.len(), "behavioural duplicates remain");
    }

    #[test]
    fn library_is_deterministic() {
        let spec = LibrarySpec::new(ArithKind::Adder, 8, 30);
        let a = build_library(&spec);
        let b = build_library(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
            assert_eq!(behavioral_signature(x), behavioral_signature(y));
        }
    }

    #[test]
    fn library_contains_exact_anchor() {
        let lib = build_library(&LibrarySpec::new(ArithKind::Adder, 8, 30));
        let exact = lib.iter().any(|c| {
            (0..50u64).all(|i| {
                let (a, b) = (i * 5 % 256, i * 7 % 256);
                c.eval(a, b) == a + b
            })
        });
        assert!(exact, "no exact adder in the library");
    }

    #[test]
    fn garbage_filter_rejects_wild_circuits() {
        // An "adder" returning constant zero has huge mean relative error.
        let mut n = afp_netlist::Netlist::new("zero");
        n.add_inputs(16);
        let z = n.constant(false);
        n.set_outputs(vec![z; 9]);
        let c = ArithCircuit::new(ArithKind::Adder, 8, n);
        assert!(!acceptable(&c, 0.40));
        assert!(acceptable(&c, 1.0));
    }

    #[test]
    fn interfaces_are_uniform() {
        for c in build_library(&LibrarySpec::new(ArithKind::Multiplier, 8, 40)) {
            assert_eq!(c.width(), 8);
            assert_eq!(c.netlist().num_inputs(), 16);
            assert_eq!(c.netlist().num_outputs(), 16);
            c.netlist().validate().unwrap();
        }
    }
}

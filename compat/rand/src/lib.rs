//! Offline stand-in for the `rand` crate.
//!
//! Implements the small API surface this workspace uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded through splitmix64), the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, `gen`, `gen_range` over integer and float
//! ranges, and `gen_bool`. Streams are deterministic per seed but do not
//! match the real `rand` crate's output.

#![forbid(unsafe_code)]

/// Core random source: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer/float types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                debug_assert!(low <= high);
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Widening-multiply range reduction (Lemire, without the
                // rejection step — bias is far below 2^-32 for the small
                // ranges this workspace draws).
                let m = (rng.next_u64() as u128) * ((span + 1) as u128);
                low.wrapping_add((m >> 64) as $t)
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                debug_assert!(low <= high);
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let m = (rng.next_u64() as u128) * ((span + 1) as u128);
                low.wrapping_add((m >> 64) as $t)
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        low + f64::sample(rng) * (high - low)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Dec> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// One-step decrement, to turn half-open integer ranges inclusive.
pub trait Dec {
    /// `self - 1` for integers; identity for floats (`Range<f64>` treats
    /// the upper bound as exclusive only in the measure-zero sense).
    fn dec(self) -> Self;
}

macro_rules! dec_int {
    ($($t:ty),*) => {$(impl Dec for $t { fn dec(self) -> $t { self - 1 } })*};
}
dec_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl Dec for f64 {
    fn dec(self) -> f64 {
        self
    }
}

/// The user-facing sampling trait, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type (`bool`, floats, integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (the stand-in for
    /// `rand::rngs::SmallRng`).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                SmallRng::splitmix(&mut sm),
                SmallRng::splitmix(&mut sm),
                SmallRng::splitmix(&mut sm),
                SmallRng::splitmix(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::thread_rng` stand-in: process-global, deterministically seeded.
pub fn thread_rng() -> rngs::SmallRng {
    rngs::SmallRng::seed_from_u64(0x7EAD_0001)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..40);
            assert!((5..40).contains(&v));
            let u = rng.gen_range(0usize..=9);
            assert!(u <= 9);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}

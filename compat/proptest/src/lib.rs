//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! integer range strategies (`a..b`, `a..=b`), and the
//! [`prop_assert!`] / [`prop_assert_eq!`] macros. Inputs are drawn from a
//! deterministic per-test RNG; there is no shrinking — a failing case
//! reports the concrete arguments instead.

#![forbid(unsafe_code)]

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real default (256) makes some exhaustive-evaluation
        // properties slow; 48 keeps good coverage at test-suite speed.
        ProptestConfig { cases: 48 }
    }
}

/// Failure raised by `prop_assert!` family; carries the rendered message.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator: the stand-in for proptest strategies.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut test_runner::TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::{test_runner::TestRng, Strategy};

    /// Strategy for a `Vec` whose length is drawn from a range and whose
    /// elements are drawn from an element strategy. Built by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A vector of `len` elements, each drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The deterministic RNG driving value generation.

    /// splitmix64 generator, seeded from the property name.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Deterministic seed derived from `name` (usually the test fn name).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written inside the macro block,
/// as with the real proptest) that runs `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{} with inputs {:?}:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            ($(&$arg,)*),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Property assertion: on failure, aborts the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(a in 3u64..17, b in 0usize..=4, c in -5i64..5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((-5..5).contains(&c));
        }

        #[test]
        fn eq_assertion_passes(x in 0u32..100) {
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in prop::collection::vec((0usize..3, 10u64..20), 0..8)
        ) {
            prop_assert!(v.len() < 8);
            for &(i, x) in &v {
                prop_assert!(i < 3);
                prop_assert!((10..20).contains(&x));
            }
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset used by this workspace's benches: benchmark
//! groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros.
//! Measurement is a simple calibrated wall-clock loop: a warm-up sizes the
//! per-sample iteration count, then `sample_size` samples are timed and
//! the median/mean per-iteration times (plus throughput, if configured)
//! are printed to stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The measurement loop handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Per-sample mean iteration times, filled by [`Bencher::iter`].
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Run `f` repeatedly and record per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & calibration: find an iteration count giving samples of
        // at least ~5 ms (capped so huge benches still finish).
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 4;
        }
        self.sample_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
            self.sample_ns.push(ns);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run(&id, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        self.run(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: self.sample_size,
            sample_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.sample_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let mut line = format!(
            "{}/{:<40} median {:>12}  mean {:>12}  ({} samples x {} iters)",
            self.name,
            id,
            format_ns(median),
            format_ns(mean),
            bencher.sample_ns.len(),
            bencher.iters_per_sample,
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if median > 0.0 {
                let per_s = count as f64 / (median * 1e-9);
                line.push_str(&format!("  {:.3e} {unit}/s", per_s));
            }
        }
        println!("{line}");
        self.criterion
            .results
            .push((format!("{}/{id}", self.name), median));
    }

    /// End the group (printing is incremental; this is a no-op marker).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// `(benchmark id, median ns/iter)` pairs, in execution order.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// Compatibility no-op (the real crate parses CLI filters here).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Define a benchmark group function, as in the real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_records() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].1 >= 0.0);
        assert!(c.results[0].0.contains("compat/sum"));
        assert!(c.results[1].0.contains("scaled/4"));
    }
}
